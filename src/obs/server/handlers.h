#ifndef TURL_OBS_SERVER_HANDLERS_H_
#define TURL_OBS_SERVER_HANDLERS_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/server/server.h"

namespace turl {
namespace obs {
namespace server {

/// Standard endpoint set (the scrape surface documented in DESIGN.md §10):
///
///   /          index of registered endpoints
///   /metrics   Prometheus text exposition of the global registry
///   /healthz   liveness + registered readiness probes (200 / 503)
///   /varz      full JSON metrics snapshot (counters/gauges/histograms with
///              p50/p95/p99) plus process RSS gauges
///   /tracez    SlowTraceReport table (?slow=N), or the last-N spans as a
///              Chrome-trace JSON slice with ?format=json&limit=N
///   /profilez  profiler self-time tree (?format=json for the JSON report)
///   /statusz   per-stream SLI table over the 10s/1m/5m windows, active SLO
///              burns (?format=json for the machine form)
///   /requestz  last-N wide events, newest first
///              (?limit=N&status=...&task=...&origin=...; ?format=json)
void RegisterStandardHandlers(ObsServer* server);

/// Positive numeric query parameter clamped to [1, max_value]; `fallback`
/// when the key is absent, empty, or not a positive number. Duplicate keys
/// keep the last value (the ParseQuery contract).
size_t QueryParamSizeT(const HttpRequest& request, const char* key,
                       size_t fallback, size_t max_value);

/// String query parameter; `fallback` when the key is absent (an explicit
/// empty value — "?status=" — returns the empty string, not the fallback).
std::string QueryParamString(const HttpRequest& request, const char* key,
                             const std::string& fallback = std::string());

/// One readiness check: return true when ready; *detail may carry a short
/// human-readable explanation either way. Probes run on server worker
/// threads, so they must be thread-safe and fast.
using ProbeFn = std::function<bool(std::string* detail)>;

/// Process-wide readiness probes feeding /healthz. Long-running components
/// register a probe for their lifetime (ScopedReadinessProbe): the
/// Pretrainer registers "ckpt_dir_writable" while checkpointing, the
/// BatchScheduler registers "rt.scheduler" while alive. /healthz is 200
/// only when every registered probe passes (liveness alone when none are).
class HealthRegistry {
 public:
  static HealthRegistry& Get();

  /// Registers a probe; the id unregisters it. Duplicate names are allowed
  /// (two schedulers each report).
  int Add(std::string name, ProbeFn probe);
  void Remove(int id);

  struct Result {
    std::string name;
    bool ok = false;
    std::string detail;
  };
  /// Runs every registered probe (outside the registry lock, in
  /// registration order). A probe racing its own Remove may still run once.
  std::vector<Result> RunAll() const;

  size_t size() const;

 private:
  HealthRegistry() = default;
  mutable std::mutex mu_;
  int next_id_ = 1;
  std::map<int, std::pair<std::string, ProbeFn>> probes_;
};

/// RAII registration: the probe participates in /healthz for this object's
/// lifetime.
class ScopedReadinessProbe {
 public:
  ScopedReadinessProbe(std::string name, ProbeFn probe)
      : id_(HealthRegistry::Get().Add(std::move(name), std::move(probe))) {}
  ~ScopedReadinessProbe() { HealthRegistry::Get().Remove(id_); }

  ScopedReadinessProbe(const ScopedReadinessProbe&) = delete;
  ScopedReadinessProbe& operator=(const ScopedReadinessProbe&) = delete;

 private:
  int id_;
};

/// Starts the process-wide observability server when TURL_OBS_PORT is set
/// ("0" = ephemeral, for tests; unset/empty = off, the default) with the
/// standard handlers registered. Idempotent — every long-running entry point
/// calls it and the first call wins; later calls return the same server (or
/// nullptr when the plane is off). The server is stopped at process exit.
ObsServer* StartFromEnv();

}  // namespace server
}  // namespace obs
}  // namespace turl

#endif  // TURL_OBS_SERVER_HANDLERS_H_
