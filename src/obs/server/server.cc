#include "obs/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"

namespace turl {
namespace obs {
namespace server {

namespace {

Counter* RequestCounter() {
  static Counter* c = MetricsRegistry::Get().GetCounter("obs.server.requests");
  return c;
}

Counter* ShedCounter() {
  static Counter* c = MetricsRegistry::Get().GetCounter("obs.server.shed");
  return c;
}

Counter* BadRequestCounter() {
  static Counter* c =
      MetricsRegistry::Get().GetCounter("obs.server.bad_requests");
  return c;
}

Histogram* HandleHistogram() {
  static Histogram* h =
      MetricsRegistry::Get().GetHistogram("obs.server.handle_ms");
  return h;
}

}  // namespace

ObsServer::ObsServer() : ObsServer(Options()) {}

ObsServer::ObsServer(Options options) : options_(std::move(options)) {
  TURL_CHECK_GE(options_.port, 0);
  TURL_CHECK_GT(options_.num_workers, 0);
  TURL_CHECK_GT(options_.max_queued, 0);
}

ObsServer::~ObsServer() { Stop(); }

void ObsServer::Handle(const std::string& path, Handler handler) {
  TURL_CHECK(!running()) << "Handle() after Start()";
  handlers_[path] = std::move(handler);
}

std::string ObsServer::base_url() const {
  return "http://127.0.0.1:" + std::to_string(port_);
}

std::vector<std::string> ObsServer::paths() const {
  std::vector<std::string> out;
  out.reserve(handlers_.size());
  for (const auto& [path, handler] : handlers_) out.push_back(path);
  return out;
}

Status ObsServer::Start() {
  if (running()) return Status::FailedPrecondition("server already running");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("socket: " + std::string(strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::IoError("bind " + options_.bind_address + ":" +
                                     std::to_string(options_.port) + ": " +
                                     strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    const Status s = Status::IoError("listen: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  // Resolve port 0 to the kernel-assigned ephemeral port.
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status s =
        Status::IoError("getsockname: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);

  stopping_.store(false, std::memory_order_release);
  hard_stop_.store(false, std::memory_order_release);
  exited_workers_ = 0;
  pending_.clear();
  in_flight_.assign(static_cast<size_t>(options_.num_workers), -1);
  running_.store(true, std::memory_order_release);

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  return Status::OK();
}

void ObsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // 1. Stop accepting. The accept thread polls stopping_ every 100ms.
  stopping_.store(true, std::memory_order_release);
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Graceful drain: workers finish the queue, then exit their loops.
  work_cv_.notify_all();
  bool drained;
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained = drained_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_deadline_ms),
        [this] { return exited_workers_ == static_cast<int>(workers_.size()); });
  }

  // 3. Hard deadline: shut down in-flight sockets so blocked reads/writes
  // fail immediately, and tell workers to close the rest unserved.
  if (!drained) {
    hard_stop_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      for (int fd : in_flight_) {
        if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
      }
    }
    work_cv_.notify_all();
  }
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  // Anything still queued was never handed to a worker.
  for (int fd : pending_) ::close(fd);
  pending_.clear();
}

void ObsServer::AcceptLoop() {
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return;
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r <= 0) continue;  // Timeout or EINTR — re-check stopping_.
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (static_cast<int>(pending_.size()) >= options_.max_queued) {
        shed = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      // Backpressure: answer 503 right here rather than queue unboundedly —
      // a slow consumer must not grow server memory.
      ShedCounter()->Inc();
      HttpResponse resp;
      resp.status = 503;
      resp.body = "overloaded: connection queue full\n";
      const std::string wire = SerializeResponse(resp);
      WriteAll(fd, wire.data(), wire.size());
      // Half-close, then drain the request the client is mid-send on:
      // closing with unread bytes in the socket RSTs the connection, which
      // can destroy the 503 before the client reads it. Drain is bounded
      // (bytes and time) so a hostile peer cannot pin the accept thread.
      ::shutdown(fd, SHUT_WR);
      struct timeval tv;
      tv.tv_sec = 0;
      tv.tv_usec = 500 * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      char drain[1024];
      for (int i = 0; i < 64 && ::recv(fd, drain, sizeof(drain), 0) > 0; ++i) {
      }
      ::close(fd);
    } else {
      work_cv_.notify_one();
    }
  }
}

void ObsServer::WorkerLoop(int worker_index) {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) break;  // Stopping and fully drained.
      fd = pending_.front();
      pending_.pop_front();
    }
    if (hard_stop_.load(std::memory_order_acquire)) {
      ::close(fd);  // Deadline lapsed: close unserved.
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      in_flight_[static_cast<size_t>(worker_index)] = fd;
    }
    ServeConnection(fd);
    {
      // Clear the slot before close() so the hard-deadline shutdown() can
      // never hit a recycled fd.
      std::lock_guard<std::mutex> lock(conn_mu_);
      in_flight_[static_cast<size_t>(worker_index)] = -1;
    }
    ::close(fd);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++exited_workers_;
  }
  drained_cv_.notify_all();
}

void ObsServer::ServeConnection(int fd) {
  struct timeval tv;
  tv.tv_sec = options_.read_timeout_ms / 1000;
  tv.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  std::string head;
  if (!ReadRequestHead(fd, &head)) {
    BadRequestCounter()->Inc();
    return;  // EOF/timeout/garbage before a full head — nothing to answer.
  }
  HttpRequest request;
  HttpResponse response;
  bool head_only = false;
  if (!ParseRequestHead(head, &request)) {
    BadRequestCounter()->Inc();
    response.status = 400;
    response.body = "malformed request\n";
  } else {
    head_only = request.method == "HEAD";
    const auto start = std::chrono::steady_clock::now();
    response = Dispatch(request);
    HandleHistogram()->Observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  RequestCounter()->Inc();
  std::string wire = SerializeResponse(response);
  if (head_only) wire.resize(wire.find("\r\n\r\n") + 4);
  WriteAll(fd, wire.data(), wire.size());
  ::shutdown(fd, SHUT_WR);  // Flush then signal EOF; caller closes.
}

HttpResponse ObsServer::Dispatch(const HttpRequest& request) const {
  HttpResponse response;
  if (request.method != "GET" && request.method != "HEAD") {
    response.status = 405;
    response.body = "method not allowed (endpoints are GET-only)\n";
    return response;
  }
  const auto it = handlers_.find(request.path);
  if (it == handlers_.end()) {
    response.status = 404;
    std::string body = "not found; endpoints:\n";
    for (const auto& [path, handler] : handlers_) body += "  " + path + "\n";
    response.body = std::move(body);
    return response;
  }
  try {
    return it->second(request);
  } catch (const std::exception& e) {
    response.status = 500;
    response.body = std::string("handler error: ") + e.what() + "\n";
    return response;
  }
}

}  // namespace server
}  // namespace obs
}  // namespace turl
