#ifndef TURL_OBS_SERVER_SERVER_H_
#define TURL_OBS_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/server/http.h"
#include "util/status.h"

namespace turl {
namespace obs {
namespace server {

/// The live observability plane: a dependency-free HTTP/1.0 server over
/// POSIX sockets that exposes the in-process metrics/trace/profile state of
/// a running job (see handlers.h for the standard endpoint set).
///
/// Threading model: one accept thread (blocking accept via a 100ms poll loop
/// so Stop() is prompt) feeds a bounded queue of accepted connections
/// drained by a fixed pool of worker threads — one request per connection,
/// Connection: close. When the queue is full the accept thread sheds the
/// connection with an immediate 503 instead of queueing unboundedly
/// (backpressure; counted as `obs.server.shed`).
///
/// Shutdown semantics: Stop() first stops accepting, then lets workers drain
/// every queued and in-flight response gracefully; connections still open
/// after `drain_deadline_ms` are forcibly shut down so Stop() has a hard
/// upper bound. Stop() is idempotent and also runs from the destructor.
///
/// Handlers run on worker threads, so anything they touch must be
/// thread-safe (the metrics registry, tracer and profiler all are).
class ObsServer {
 public:
  struct Options {
    /// TCP port; 0 binds an ephemeral port (read it back via port()).
    int port = 0;
    /// Bind address. The plane serves process-internal state, so it binds
    /// loopback by default; widen deliberately.
    std::string bind_address = "127.0.0.1";
    /// Worker threads serving accepted connections.
    int num_workers = 2;
    /// Accepted-but-unserved connections held at once; beyond this the
    /// accept thread sheds with 503.
    int max_queued = 16;
    /// SO_RCVTIMEO while reading a request head; a client that connects and
    /// goes silent cannot pin a worker past this.
    int read_timeout_ms = 2000;
    /// Stop(): grace period for in-flight/queued responses before their
    /// sockets are forcibly shut down.
    int drain_deadline_ms = 2000;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  ObsServer();  // Default options (the Options() defaults above).
  explicit ObsServer(Options options);
  ~ObsServer();

  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Registers `handler` for exact-match GET/HEAD requests on `path`.
  /// Must be called before Start().
  void Handle(const std::string& path, Handler handler);

  /// Binds, listens and spawns the accept + worker threads. Fails (without
  /// leaking) if the address cannot be bound or the server already runs.
  Status Start();

  /// Graceful drain then hard-deadline shutdown (see class comment).
  /// Safe to call twice; Start() works again afterwards.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves port 0 to the kernel-assigned one). 0 before
  /// the first successful Start().
  int port() const { return port_; }
  /// "http://127.0.0.1:<port>" convenience for logs and tests.
  std::string base_url() const;

  /// Registered endpoint paths, sorted — what the index page lists.
  std::vector<std::string> paths() const;

 private:
  void AcceptLoop();
  void WorkerLoop(int worker_index);
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;

  Options options_;
  std::map<std::string, Handler> handlers_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// Set when the drain deadline lapsed: workers close queued connections
  /// unserved instead of answering them.
  std::atomic<bool> hard_stop_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;    ///< Queue non-empty or stopping.
  std::condition_variable drained_cv_; ///< A worker exited its loop.
  std::deque<int> pending_;            ///< Accepted fds awaiting a worker.
  int exited_workers_ = 0;

  /// fd each worker currently serves (-1 idle); guarded by conn_mu_ so the
  /// hard-deadline path can shutdown() an fd without racing its close().
  std::mutex conn_mu_;
  std::vector<int> in_flight_;
};

}  // namespace server
}  // namespace obs
}  // namespace turl

#endif  // TURL_OBS_SERVER_SERVER_H_
