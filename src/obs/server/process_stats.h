#ifndef TURL_OBS_SERVER_PROCESS_STATS_H_
#define TURL_OBS_SERVER_PROCESS_STATS_H_

#include <cstdint>

namespace turl {
namespace obs {
namespace server {

/// Point-in-time process memory figures, sampled from procfs.
struct ProcessStats {
  int64_t rss_bytes = 0;       ///< Resident set (/proc/self/statm field 2).
  int64_t peak_rss_bytes = 0;  ///< High-water mark (/proc/self/status VmHWM).
};

/// Samples procfs. False (fields untouched) when procfs is unavailable —
/// callers on exotic platforms just get no memory gauges.
bool SampleProcessStats(ProcessStats* out);

/// Samples and publishes `obs.process.rss_bytes` / `obs.process.peak_rss_bytes`
/// to the global registry. Called by the /metrics and /varz handlers so every
/// scrape carries fresh memory figures; cheap enough to call ad hoc.
void UpdateProcessGauges();

}  // namespace server
}  // namespace obs
}  // namespace turl

#endif  // TURL_OBS_SERVER_PROCESS_STATS_H_
