#include "obs/server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <sstream>

namespace turl {
namespace obs {
namespace server {

namespace {

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

void ParseQuery(const std::string& q, std::map<std::string, std::string>* out) {
  size_t pos = 0;
  while (pos < q.size()) {
    size_t amp = q.find('&', pos);
    if (amp == std::string::npos) amp = q.size();
    const std::string pair = q.substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (!pair.empty()) (*out)[pair] = "";
    } else {
      (*out)[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
}

}  // namespace

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool ParseRequestHead(const std::string& head, HttpRequest* request) {
  std::istringstream in(head);
  std::string line;
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();

  // Start line: METHOD SP target SP HTTP/x.y — exactly three tokens.
  std::istringstream start(line);
  std::string target, extra;
  if (!(start >> request->method >> target >> request->version)) return false;
  if (start >> extra) return false;
  if (request->method.empty() || target.empty() || target[0] != '/') {
    return false;
  }
  if (request->version.rfind("HTTP/", 0) != 0) return false;

  const size_t qmark = target.find('?');
  request->path = target.substr(0, qmark);
  if (qmark != std::string::npos) {
    ParseQuery(target.substr(qmark + 1), &request->query);
  }

  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) break;
    const size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    request->headers.emplace_back(ToLower(Trim(line.substr(0, colon))),
                                  Trim(line.substr(colon + 1)));
  }
  return true;
}

std::string SerializeResponse(const HttpResponse& response) {
  std::ostringstream out;
  out << "HTTP/1.0 " << response.status << ' ' << StatusReason(response.status)
      << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << response.body;
  return out.str();
}

bool ReadRequestHead(int fd, std::string* head, size_t max_bytes) {
  head->clear();
  char buf[1024];
  while (head->size() < max_bytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // Error or SO_RCVTIMEO timeout (EAGAIN).
    }
    if (n == 0) return false;  // EOF before the terminator.
    head->append(buf, static_cast<size_t>(n));
    const size_t end = head->find("\r\n\r\n");
    if (end != std::string::npos) {
      head->resize(end);
      return true;
    }
  }
  return false;
}

bool WriteAll(int fd, const char* data, size_t len) {
  size_t written = 0;
  while (written < len) {
    const ssize_t n =
        ::send(fd, data + written, len - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

Status HttpGet(const std::string& host, int port, const std::string& target,
               HttpClientResponse* out, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket: " + std::string(strerror(errno)));

  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::IoError("connect: " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }

  const std::string request = "GET " + target +
                              " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!WriteAll(fd, request.data(), request.size())) {
    ::close(fd);
    return Status::IoError("send failed");
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError("recv: " + std::string(strerror(errno)));
    }
    if (n == 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IoError("truncated response (no header terminator)");
  }
  const std::string head = raw.substr(0, head_end);
  out->body = raw.substr(head_end + 4);

  // Status line: HTTP/x.y CODE REASON.
  std::istringstream in(head);
  std::string line;
  std::getline(in, line);
  std::istringstream start(line);
  std::string version, code;
  if (!(start >> version >> code) || version.rfind("HTTP/", 0) != 0) {
    return Status::IoError("malformed status line: " + line);
  }
  out->status = std::atoi(code.c_str());
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (ToLower(Trim(line.substr(0, colon))) == "content-type") {
      out->content_type = Trim(line.substr(colon + 1));
    }
  }
  return Status::OK();
}

}  // namespace server
}  // namespace obs
}  // namespace turl
