#include "obs/server/process_stats.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace turl {
namespace obs {
namespace server {

bool SampleProcessStats(ProcessStats* out) {
  // /proc/self/statm: size resident shared text lib data dt, in pages.
  long long size_pages = 0, resident_pages = 0;
  {
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr) return false;
    const int matched =
        std::fscanf(f, "%lld %lld", &size_pages, &resident_pages);
    std::fclose(f);
    if (matched != 2) return false;
  }
  const long page = ::sysconf(_SC_PAGESIZE);
  out->rss_bytes = resident_pages * (page > 0 ? page : 4096);

  // VmHWM (peak RSS) only appears in /proc/self/status, in kB.
  out->peak_rss_bytes = out->rss_bytes;  // Fallback: peak >= current.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      long long kb = 0;
      if (std::sscanf(line, "VmHWM: %lld kB", &kb) == 1) {
        out->peak_rss_bytes = kb * 1024;
        break;
      }
    }
    std::fclose(f);
  }
  return true;
}

void UpdateProcessGauges() {
  static Gauge* rss =
      MetricsRegistry::Get().GetGauge("obs.process.rss_bytes");
  static Gauge* peak =
      MetricsRegistry::Get().GetGauge("obs.process.peak_rss_bytes");
  ProcessStats stats;
  if (!SampleProcessStats(&stats)) return;
  rss->Set(static_cast<double>(stats.rss_bytes));
  peak->Set(static_cast<double>(stats.peak_rss_bytes));
}

}  // namespace server
}  // namespace obs
}  // namespace turl
