#ifndef TURL_OBS_SLO_H_
#define TURL_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace turl {
namespace obs {

/// Rolling-window SLIs and SLO watchdog
/// ====================================
/// The metrics registry answers "how many, ever"; the SLI engine answers
/// "is the service healthy *right now*". Every terminal request outcome is
/// recorded into per-stream time-bucketed windows (1-second buckets, 5
/// minutes of ring), and availability / shed rate / deadline-miss rate /
/// latency quantiles are computed over the trailing 10s, 1m and 5m horizons
/// by summing buckets — buckets merge additively (O(1) per bucket, no
/// re-sorting), so a snapshot costs a few hundred integer adds.
///
/// Exemplars: each bucket keeps the trace id of its worst traced sample, so
/// a window's p99 links to a real span on /tracez instead of being an
/// anonymous number.
///
/// The SLO watchdog evaluates declarative targets (availability >= x, p99
/// <= y ms, ...) against these windows and flips a `slo.<name>` readiness
/// probe in the HealthRegistry the moment a target burns — /healthz
/// degrades one window tick after the service does, before users notice.
///
/// Environment:
///   TURL_SLO=0   pins SLI recording off (Record is one relaxed load and a
///                branch).

/// Terminal classification of one request for SLI accounting.
enum class SliOutcome : uint8_t {
  kOk = 0,
  kShed = 1,          ///< Refused by admission control / overload.
  kDeadlineMiss = 2,  ///< Answered, but after its deadline (or never run).
  kError = 3,         ///< Anything else (bad request, shutdown, transport).
};

/// Maps a ResponseStatus name (the strings wide events carry) to an
/// outcome: "ok", "overloaded", "deadline_exceeded"; anything else is
/// kError.
SliOutcome OutcomeFromStatusName(const char* status);

/// One stream x horizon summary.
struct SliSnapshot {
  const char* stream = nullptr;
  int horizon_s = 0;
  int64_t total = 0;
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t deadline_miss = 0;
  int64_t error = 0;
  /// ok / total; 1 when the window is empty (no traffic is not an outage).
  double availability = 1.0;
  double shed_rate = 0.0;
  double deadline_miss_rate = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Trace id of the worst traced sample in the window (0 = none) and its
  /// latency — the /metrics -> /tracez link.
  uint64_t exemplar_trace_id = 0;
  double exemplar_ms = 0.0;
};

/// Process-wide SLI engine: named streams (one per task kind, "train",
/// plus the "all" aggregate every Record also feeds), each a ring of 1s
/// buckets. Record is thread-safe (per-stream mutex held for a few writes);
/// Snapshot is safe from any thread.
class SliEngine {
 public:
  static SliEngine& Get();

  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }
  /// SetEnabled(true) is a no-op when TURL_SLO=0 pinned recording off.
  static void SetEnabled(bool on);

  /// The horizons /statusz and the watchdog evaluate.
  static constexpr int kHorizonsS[3] = {10, 60, 300};
  /// Window horizon covered by the bucket ring (the longest horizon).
  static constexpr int kWindowS = 300;
  /// Every stream's Record also lands here.
  static constexpr const char* kAllStream = "all";

  SliEngine();
  SliEngine(const SliEngine&) = delete;
  SliEngine& operator=(const SliEngine&) = delete;
  ~SliEngine();

  /// Records one terminal outcome under `stream` (a static string — task
  /// kind name or "train") and under the "all" aggregate. `trace_id` 0 =
  /// untraced.
  void Record(const char* stream, SliOutcome outcome, double latency_ms,
              uint64_t trace_id = 0);

  /// Summary of `stream` over the trailing `horizon_s` seconds (clamped to
  /// kWindowS). Unknown streams return an empty snapshot.
  SliSnapshot Snapshot(const char* stream, int horizon_s) const;
  /// Every stream with any retained traffic, "all" first.
  std::vector<SliSnapshot> SnapshotAll(int horizon_s) const;
  /// Registered stream names, "all" first.
  std::vector<const char*> streams() const;

  /// Injectable seconds clock for tests (nullptr restores the steady
  /// clock). Set before traffic; not synchronized against concurrent
  /// Record.
  void SetClockForTest(std::function<int64_t()> now_s);
  int64_t NowS() const;

  /// Forgets all buckets (streams stay registered). Test hook.
  void Reset();

 private:
  struct Stream;
  Stream* FindOrCreate(const char* name);
  const Stream* Find(const char* name) const;

  static std::atomic<bool> enabled_;
  mutable std::mutex streams_mu_;
  std::vector<std::unique_ptr<Stream>> streams_;
  mutable std::mutex clock_mu_;
  std::function<int64_t()> clock_;
};

/// Prometheus-style exposition of every stream x horizon (families
/// turl_slo_requests, turl_slo_availability, turl_slo_shed_rate,
/// turl_slo_deadline_miss_rate, turl_slo_p50/p90/p99/max_ms) with
/// {task=...,window="10s"|"1m"|"5m"} labels. p99 series carry an
/// OpenMetrics-style exemplar (`# {trace_id="..."} <latency>`) when the
/// window has a traced worst sample — what makes a /metrics p99 resolvable
/// on /tracez. Appended to /metrics after the registry exposition.
std::string SliMetricsText(const SliEngine& engine = SliEngine::Get());

/// One declarative SLO: thresholds over a stream's trailing window.
/// Negative thresholds are unchecked; a window with fewer than
/// `min_requests` outcomes passes vacuously (no traffic is not an outage).
struct SloTarget {
  /// Probe name suffix: the target registers as `slo.<name>` in /healthz.
  std::string name;
  /// SLI stream the target watches (SliEngine::kAllStream for everything).
  std::string stream = SliEngine::kAllStream;
  int horizon_s = 60;
  int64_t min_requests = 1;
  double min_availability = -1.0;
  double max_shed_rate = -1.0;
  double max_deadline_miss_rate = -1.0;
  double max_p99_ms = -1.0;
};

/// Evaluates SloTargets and surfaces burns: each AddTarget registers a
/// `slo.<name>` readiness probe that re-evaluates the target on every
/// /healthz scrape, so readiness flips within one window tick of the SLI
/// degrading — no poller in the loop. Tick() additionally latches burn
/// edges: a target transitioning ok -> burning emits a warning TrainRecord
/// through the TelemetryHub (and bumps the obs.slo_burns counter) so every
/// configured sink sees the burn once, not once per scrape.
class SloWatchdog {
 public:
  static SloWatchdog& Get();

  explicit SloWatchdog(SliEngine* engine = nullptr);
  ~SloWatchdog();

  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  /// Registers the target (and its `slo.<name>` probe). Returns an id for
  /// RemoveTarget.
  int AddTarget(SloTarget target);
  void RemoveTarget(int id);
  size_t size() const;

  struct Evaluation {
    std::string name;   ///< Probe name ("slo.<target>").
    bool ok = true;
    std::string detail; ///< "availability 0.95 < 0.99 (n=40, 1m)" on burn.
  };
  /// Evaluates every target now, latches burn/recovery edges, emits the
  /// burn-edge telemetry. Call once per window tick (the serve pump loop
  /// does); /healthz stays correct without it.
  std::vector<Evaluation> Tick();

  struct Burn {
    std::string name;
    std::string reason;
    int64_t since_s = 0;  ///< Engine-clock second the burn started.
  };
  /// Targets burning as of the last evaluation (Tick or probe).
  std::vector<Burn> ActiveBurns() const;

 private:
  struct TargetState {
    SloTarget target;
    int probe_id = 0;
    bool burning = false;
    int64_t since_s = 0;
    std::string reason;
  };

  /// Threshold check only; no edge latching.
  Evaluation Evaluate(const SloTarget& target) const;
  /// Evaluates target `id` and latches its burn state (shared by probes
  /// and Tick).
  Evaluation EvaluateAndLatch(int id);

  SliEngine* engine_;
  mutable std::mutex mu_;
  int next_id_ = 1;
  std::map<int, TargetState> targets_;
};

}  // namespace obs
}  // namespace turl

#endif  // TURL_OBS_SLO_H_
