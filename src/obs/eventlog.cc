#include "obs/eventlog.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "util/logging.h"

namespace turl {
namespace obs {

namespace {

/// TURL_EVENTLOG=0 pins the log off even against SetEnabled(true).
bool ReadEnvPinnedOff() {
  const char* v = std::getenv("TURL_EVENTLOG");
  return v != nullptr && std::strcmp(v, "0") == 0;
}

const bool g_pinned_off = ReadEnvPinnedOff();

size_t RingCapacityFromEnv() {
  if (const char* v = std::getenv("TURL_EVENTLOG_BUFFER")) {
    const long long n = std::atoll(v);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 1024;
}

thread_local EventRing* tls_event_ring = nullptr;

}  // namespace

std::string ToJsonLine(const WideEvent& event) {
  std::ostringstream out;
  out << "{\"origin\":\"" << JsonEscape(event.origin ? event.origin : "")
      << "\",\"task\":\"" << JsonEscape(event.task ? event.task : "")
      << "\",\"status\":\"" << JsonEscape(event.status ? event.status : "")
      << "\",\"id\":" << event.request_id << ",\"trace\":\"" << event.trace_id
      << "\",\"replica\":" << event.replica << ",\"end_ms\":"
      << JsonDouble(event.end_ms) << ",\"total_us\":"
      << JsonDouble(event.total_us) << ",\"queue_wait_us\":"
      << JsonDouble(event.queue_wait_us) << ",\"assembly_us\":"
      << JsonDouble(event.assembly_us) << ",\"encode_us\":"
      << JsonDouble(event.encode_us) << ",\"score_us\":"
      << JsonDouble(event.score_us) << ",\"reply_us\":"
      << JsonDouble(event.reply_us) << ",\"batch_size\":" << event.batch_size
      << ",\"bytes_in\":" << event.bytes_in << ",\"bytes_out\":"
      << event.bytes_out << ",\"deadline_budget_ms\":"
      << JsonDouble(event.deadline_budget_ms) << "}";
  return out.str();
}

EventRing::EventRing(size_t capacity, uint32_t tid)
    : slots_(std::max<size_t>(capacity, 2)), tid_(tid) {}

void EventRing::Push(const WideEvent& event) {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  // Seqlock write (the TraceRing discipline, see seqlock.h): a concurrent
  // Snapshot skips the slot instead of reading a torn event.
  slots_[size_t(n % slots_.size())].Store(n, event);
  count_.store(n + 1, std::memory_order_release);
}

void EventRing::Snapshot(std::vector<WideEvent>* out) const {
  const uint64_t n = count_.load(std::memory_order_acquire);
  const uint64_t cap = slots_.size();
  for (uint64_t i = n > cap ? n - cap : 0; i < n; ++i) {
    // Valid only if the slot still holds logical event i (the writer may
    // have lapped us, or be mid-write).
    WideEvent copy;
    if (slots_[size_t(i % cap)].TryLoad(i, &copy)) out->push_back(copy);
  }
}

uint64_t EventRing::dropped() const {
  const uint64_t n = count_.load(std::memory_order_acquire);
  const uint64_t cap = slots_.size();
  return n > cap ? n - cap : 0;
}

void EventRing::Reset() { count_.store(0, std::memory_order_release); }

std::atomic<bool> EventLog::enabled_{!ReadEnvPinnedOff()};

EventLog::EventLog() : ring_capacity_(RingCapacityFromEnv()) {
  if (const char* path = std::getenv("TURL_EVENTLOG_JSONL")) {
    if (*path != '\0') {
      static std::string* exit_path = new std::string(path);
      std::atexit(+[] {
        if (!EventLog::Get().WriteJsonl(*exit_path)) {
          TURL_LOG(Warning) << "failed to write wide-event log to "
                            << *exit_path;
        }
      });
    }
  }
}

EventLog& EventLog::Get() {
  static EventLog* log = new EventLog();
  return *log;
}

void EventLog::SetEnabled(bool on) {
  if (g_pinned_off) return;
  enabled_.store(on, std::memory_order_relaxed);
}

EventRing* EventLog::ring() {
  if (tls_event_ring != nullptr) return tls_event_ring;
  std::lock_guard<std::mutex> lock(mu_);
  auto owned = std::make_shared<EventRing>(
      ring_capacity_, static_cast<uint32_t>(rings_.size()));
  rings_.push_back(owned);
  tls_event_ring = owned.get();
  return tls_event_ring;
}

void EventLog::Append(const WideEvent& event) {
  if (!Enabled()) return;
  ring()->Push(event);
}

std::vector<WideEvent> EventLog::Snapshot(size_t last_n) const {
  std::vector<WideEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) ring->Snapshot(&out);
  }
  std::sort(out.begin(), out.end(),
            [](const WideEvent& a, const WideEvent& b) {
              return a.end_ms != b.end_ms ? a.end_ms < b.end_ms
                                          : a.request_id < b.request_id;
            });
  if (last_n > 0 && out.size() > last_n) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(last_n));
  }
  return out;
}

uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

void EventLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) ring->Reset();
}

std::string EventLog::ToJsonl(size_t last_n) const {
  std::ostringstream out;
  for (const WideEvent& event : Snapshot(last_n)) {
    out << ToJsonLine(event) << '\n';
  }
  return out.str();
}

bool EventLog::WriteJsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << ToJsonl();
  return out.good();
}

}  // namespace obs
}  // namespace turl
