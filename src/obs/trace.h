#ifndef TURL_OBS_TRACE_H_
#define TURL_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/seqlock.h"

namespace turl {
namespace obs {

/// Request-scoped tracing
/// ======================
/// Where the span profiler (profiler.h) answers "how fast is span X on
/// average", the tracer answers "where did *this* request spend its time":
/// every inference request (and every training step) carries a TraceContext
/// — a trace id plus the span id to parent children under — through the
/// queue → micro-batch → parallel-encode → score pipeline, and each stage
/// records a timestamped span with its parent link, thread id and key/value
/// annotations (batch size, token budget, task head, ...).
///
/// Spans land in per-thread lock-free ring buffers (seqlock slots, oldest
/// overwritten first) drained by the TraceCollector. Two exporters read the
/// collected events: Chrome trace-event JSON (`TURL_TRACE_JSON=trace.json`,
/// loadable in chrome://tracing or Perfetto) and an aligned "slowest N
/// requests with per-stage breakdown" table printed by benches.
///
/// Cost discipline matches TURL_PROFILE: with tracing disabled, entering a
/// span costs one relaxed atomic load and a branch, so instrumentation is
/// safe always-on. Sampling (`TURL_TRACE_SAMPLE=1/N`) bounds the enabled
/// cost on high-rate services; an unsampled request carries an empty
/// context and every span under it is the same single-branch no-op.
///
/// Environment:
///   TURL_TRACE=1        enable at process start; TURL_TRACE=0 pins off.
///   TURL_TRACE_JSON=p   enable and write Chrome trace JSON to `p` at exit.
///   TURL_TRACE_SAMPLE=1/N  keep ~1 in N traces (deterministic, seeded).
///   TURL_TRACE_BUFFER=N    per-thread ring capacity in events (default 16384).

/// Identity of one traced request: the trace id plus the span new children
/// parent under. A default-constructed context is "not traced" (disabled or
/// unsampled) and makes every span operation under it a no-op.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  ///< Parent span for children opened under this context.
  bool traced() const { return trace_id != 0; }
};

/// One key/value annotation. The value is formatted into a short inline
/// buffer so events stay trivially copyable inside the seqlock ring. The
/// buffer is deliberately NOT zero-initialized — spans are constructed on
/// the disabled-tracing fast path, and only annotations[0, n_annotations)
/// are ever read (Annotate always NUL-terminates).
struct TraceAnnotation {
  const char* key = nullptr;  ///< Static string (outlives the tracer).
  char value[24];
};

/// One completed span as stored in the ring and handed to exporters.
/// Times are microseconds since the tracer's epoch (steady clock).
struct TraceEvent {
  const char* name = nullptr;  ///< Static string (outlives the tracer).
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span of its trace.
  double start_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;  ///< Dense per-thread id assigned at ring creation.
  uint32_t n_annotations = 0;
  TraceAnnotation annotations[4];
};

/// An open span: allocated by Tracer::Begin, closed by Tracer::End (or the
/// RAII TraceSpan). Plain data, so it can live inside a request struct and
/// begin/end at different call sites — or different threads.
struct ActiveSpan {
  const char* name = nullptr;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  std::chrono::steady_clock::time_point start;
  uint32_t n_annotations = 0;
  TraceAnnotation annotations[4];

  bool traced() const { return trace_id != 0; }
  /// Context that parents children under this span.
  TraceContext context() const { return TraceContext{trace_id, span_id}; }
  /// No-ops on an untraced span; extra annotations beyond 4 are dropped.
  void Annotate(const char* key, const char* value);
  void Annotate(const char* key, int64_t value);
};

/// Fixed-capacity single-producer ring of TraceEvents. The owning thread
/// pushes lock-free; when full, the oldest event is overwritten (dropped
/// oldest-first). Any thread may Snapshot concurrently: each slot is a
/// seqlock, so a reader that races the writer skips the torn slot instead
/// of blocking it.
class TraceRing {
 public:
  TraceRing(size_t capacity, uint32_t tid);

  /// Producer side; owning thread only.
  void Push(const TraceEvent& event);

  /// Appends the retained events (oldest first) to `out`. Safe from any
  /// thread; events being overwritten mid-read are skipped.
  void Snapshot(std::vector<TraceEvent>* out) const;

  uint32_t tid() const { return tid_; }
  size_t capacity() const { return slots_.size(); }
  /// Events overwritten because the ring was full.
  uint64_t dropped() const;
  /// Forgets all events. Test hook; the owning thread must be quiescent.
  void Reset();

 private:
  std::vector<SeqlockSlot<TraceEvent>> slots_;
  std::atomic<uint64_t> count_{0};
  uint32_t tid_;
};

/// Owns one TraceRing per thread that ever recorded a span and drains them
/// for the exporters. Rings outlive their threads (pool workers come and
/// go); thread ids are assigned densely in registration order.
class TraceCollector {
 public:
  explicit TraceCollector(size_t ring_capacity);

  /// The calling thread's ring, created and registered on first use.
  TraceRing* ring();

  /// All retained events across every ring, sorted by start time.
  std::vector<TraceEvent> Snapshot() const;
  /// Total events overwritten across rings.
  uint64_t dropped() const;
  size_t ring_capacity() const { return ring_capacity_; }
  /// Forgets all recorded events (rings stay registered). Test hook; every
  /// recording thread must be quiescent.
  void Reset();

 private:
  size_t ring_capacity_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<TraceRing>> rings_;
};

/// Process-wide tracer: enable switch, sampler, id allocation and the
/// collector. See the file comment for the environment knobs.
class Tracer {
 public:
  static Tracer& Get();

  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }
  /// SetEnabled(true) is a no-op when TURL_TRACE=0 pinned tracing off.
  static void SetEnabled(bool on);

  /// Keep ~1 in `period` traces; decisions are a deterministic hash of
  /// (seed, trace sequence number), so a fixed seed replays the same
  /// sampled set. Resets the sequence. period <= 1 keeps everything.
  void SetSampler(uint64_t period, uint64_t seed);

  /// Allocates a new sampled trace; the context is untraced when tracing is
  /// disabled or the sampler skipped this request.
  TraceContext StartTrace();

  /// Opens a span under `parent` (untraced parent -> untraced span).
  ActiveSpan Begin(const char* name, TraceContext parent);
  /// StartTrace + Begin: the returned span is the root of a new trace.
  ActiveSpan BeginTrace(const char* name);
  /// Closes the span now and records it to the calling thread's ring.
  void End(ActiveSpan* span);
  /// Records a span with explicit endpoints — for stages reconstructed
  /// after the fact, like queue-wait (enqueue -> drain).
  void RecordManual(const char* name, TraceContext parent,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end,
                    std::initializer_list<std::pair<const char*, int64_t>>
                        annotations = {});

  TraceCollector& collector();
  /// Microseconds since the tracer's epoch.
  double ToMicros(std::chrono::steady_clock::time_point t) const;

 private:
  Tracer();

  static std::atomic<bool> enabled_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> trace_seq_{0};
  std::atomic<uint64_t> sample_period_{1};
  std::atomic<uint64_t> sample_seed_{0};
  std::unique_ptr<TraceCollector> collector_;
};

/// The calling thread's current context — what spans with no explicit
/// parent nest under. Untraced outside any TraceContextScope/TraceSpan.
TraceContext CurrentTraceContext();

/// RAII: installs a request's context as the thread's current context (the
/// cross-thread handoff — e.g. a pool worker adopting the identity of the
/// request whose table it encodes) and restores the previous on exit.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
  bool installed_ = false;
};

/// Tag selecting the TraceSpan constructor that opens a new trace.
struct NewTraceTag {};
inline constexpr NewTraceTag kNewTrace{};

/// RAII span. The plain constructor nests under the thread's current
/// context (no-op when that is untraced); the kNewTrace constructor starts
/// a new sampled trace with this span as root. Either way the span becomes
/// the thread's current context for its scope. Disabled tracing costs one
/// relaxed atomic load and a branch.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(NewTraceTag, const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool traced() const { return span_.traced(); }
  TraceContext context() const { return span_.context(); }
  void Annotate(const char* key, const char* value) {
    span_.Annotate(key, value);
  }
  void Annotate(const char* key, int64_t value) { span_.Annotate(key, value); }

 private:
  void Install();

  ActiveSpan span_;
  TraceContext prev_;
  bool installed_ = false;
};

/// Parses a TURL_TRACE_SAMPLE value: "1/N" or plain "N" -> N; empty,
/// malformed or non-positive values -> 1 (keep everything).
uint64_t ParseSamplePeriod(const char* value);

/// The collected events as Chrome trace-event JSON ({"traceEvents":[...]},
/// "X" complete events with ts/dur in microseconds; args carry trace/span/
/// parent ids and the annotations; "M" metadata events name the threads).
/// `last_n` > 0 keeps only the most recent N events by start time — the
/// bounded slice /tracez serves; 0 exports everything retained.
std::string ChromeTraceJson(size_t last_n = 0);
/// Writes ChromeTraceJson() to `path`; false if the file cannot be written.
bool WriteChromeTrace(const std::string& path);

/// Aligned table of the slowest `n` root spans with per-stage breakdown:
/// one line per request (trace id, root name, total ms) followed by the
/// summed duration of its child spans grouped by name.
std::string SlowTraceReport(size_t n = 10);

}  // namespace obs
}  // namespace turl

#define TURL_TRACE_CONCAT_INNER(a, b) a##b
#define TURL_TRACE_CONCAT(a, b) TURL_TRACE_CONCAT_INNER(a, b)

/// Times the enclosing scope as a child of the thread's current trace
/// context (single-branch no-op when tracing is off or the request is
/// unsampled). `name` must be a string literal.
#define TURL_TRACE_SCOPE(name) \
  ::turl::obs::TraceSpan TURL_TRACE_CONCAT(turl_trace_scope_, __LINE__)(name)

#endif  // TURL_OBS_TRACE_H_
