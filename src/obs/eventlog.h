#ifndef TURL_OBS_EVENTLOG_H_
#define TURL_OBS_EVENTLOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/seqlock.h"

namespace turl {
namespace obs {

/// Wide-event request log
/// ======================
/// One structured record per served request — the "wide event" style of
/// observability: instead of scattering a request's story across counters,
/// a single record carries everything needed to answer "which requests are
/// burning the p99?" after the fact (id, task, replica, byte sizes, the
/// per-stage time breakdown, the deadline budget vs. what was used, the
/// final status, and the trace id linking to /tracez).
///
/// Events land in lock-light per-thread rings (seqlock slots, oldest
/// overwritten first — the TraceRing discipline) so the serve hot path pays
/// a few stores per request and never contends a global lock. /requestz
/// serves the last N events with status/task filters; TURL_EVENTLOG_JSONL
/// exports everything retained at exit.
///
/// Environment:
///   TURL_EVENTLOG=0        pins the log off (Append is a single relaxed
///                          load and a branch).
///   TURL_EVENTLOG_BUFFER=N per-thread ring capacity in events (default
///                          1024).
///   TURL_EVENTLOG_JSONL=p  write the retained events as JSONL to `p` at
///                          process exit.

/// One wide event. Trivially copyable (seqlock slots copy it), so all
/// strings are static `const char*` (status/task/origin name tables).
struct WideEvent {
  /// Which layer emitted the event: "serve" (socket front-end), "rt"
  /// (scheduler-owned requests with no front-end), "train" (Pretrainer
  /// steps). Static string.
  const char* origin = nullptr;
  /// Task-kind name ("encode", "entity_linking", ...) or "train.step".
  /// Static string.
  const char* task = nullptr;
  /// Terminal status name ("ok", "overloaded", "deadline_exceeded", ...).
  /// Static string.
  const char* status = nullptr;
  uint64_t request_id = 0;
  /// Trace id of the request's root span (0 = untraced/unsampled); the
  /// /requestz → /tracez drill-down link.
  uint64_t trace_id = 0;
  /// Serving replica that ran the request; -1 when there is none.
  int32_t replica = -1;
  /// Wire payload bytes in / response frame bytes out (0 when no wire).
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  /// Completion time on the BatchScheduler::NowMs() steady clock — what
  /// /requestz sorts by and reports age against.
  double end_ms = 0.0;
  /// Per-stage breakdown, microseconds. encode_us is the wall time of the
  /// micro-batch the request rode in (batch-shared, see batch_size);
  /// score_us is head scoring when a head ran (0 for encode-only).
  double queue_wait_us = 0.0;
  double assembly_us = 0.0;
  double encode_us = 0.0;
  double score_us = 0.0;
  double reply_us = 0.0;
  /// End-to-end latency, microseconds (receipt/submit → reply written).
  double total_us = 0.0;
  /// Requests in the micro-batch that served this one (0 = never batched).
  int32_t batch_size = 0;
  /// Relative deadline granted on arrival, ms; 0 = none. The budget "used"
  /// is total_us — a deadline_exceeded event shows exactly how far over.
  double deadline_budget_ms = 0.0;
};

/// Single-line JSON serialization (durations in microseconds; ids as
/// strings, matching the Chrome-trace export).
std::string ToJsonLine(const WideEvent& event);

/// Fixed-capacity single-producer ring of WideEvents: the owning thread
/// pushes lock-free, any thread snapshots concurrently (seqlock slots; a
/// torn slot is skipped, not blocked on). Oldest events are overwritten
/// when full.
class EventRing {
 public:
  EventRing(size_t capacity, uint32_t tid);

  /// Producer side; owning thread only.
  void Push(const WideEvent& event);

  /// Appends retained events (oldest first) to `out`; skips torn slots.
  void Snapshot(std::vector<WideEvent>* out) const;

  uint32_t tid() const { return tid_; }
  size_t capacity() const { return slots_.size(); }
  /// Events overwritten because the ring was full.
  uint64_t dropped() const;
  /// Forgets all events. Test hook; the owning thread must be quiescent.
  void Reset();

 private:
  std::vector<SeqlockSlot<WideEvent>> slots_;
  std::atomic<uint64_t> count_{0};
  uint32_t tid_;
};

/// Process-wide wide-event log: one EventRing per emitting thread, drained
/// for /requestz and the JSONL export. Rings outlive their threads.
class EventLog {
 public:
  static EventLog& Get();

  /// Disabled Append costs one relaxed load and a branch. SetEnabled(true)
  /// is a no-op when TURL_EVENTLOG=0 pinned the log off.
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void SetEnabled(bool on);

  /// Records one event to the calling thread's ring (no-op when disabled).
  void Append(const WideEvent& event);

  /// Retained events across every ring, oldest first by end_ms. `last_n`
  /// > 0 keeps only the newest N.
  std::vector<WideEvent> Snapshot(size_t last_n = 0) const;
  /// Total events overwritten across rings.
  uint64_t dropped() const;
  size_t ring_capacity() const { return ring_capacity_; }
  /// Forgets all recorded events (rings stay registered). Test hook; every
  /// emitting thread must be quiescent.
  void Reset();

  /// The retained events as JSONL, oldest first.
  std::string ToJsonl(size_t last_n = 0) const;
  /// Writes ToJsonl() to `path`; false if the file cannot be written.
  bool WriteJsonl(const std::string& path) const;

 private:
  EventLog();
  EventRing* ring();

  static std::atomic<bool> enabled_;
  size_t ring_capacity_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<EventRing>> rings_;
};

}  // namespace obs
}  // namespace turl

#endif  // TURL_OBS_EVENTLOG_H_
