#include "obs/telemetry.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"
#include "util/logging.h"

namespace turl {
namespace obs {

namespace {

bool Present(double v) { return !std::isnan(v); }

}  // namespace

std::string ToJsonLine(const TrainRecord& record) {
  std::ostringstream out;
  out << "{\"phase\":\"" << JsonEscape(record.phase)
      << "\",\"step\":" << record.step;
  if (record.epoch >= 0) out << ",\"epoch\":" << record.epoch;
  if (Present(record.loss)) out << ",\"loss\":" << JsonDouble(record.loss);
  if (Present(record.mlm_loss)) {
    out << ",\"mlm_loss\":" << JsonDouble(record.mlm_loss);
  }
  if (Present(record.mer_loss)) {
    out << ",\"mer_loss\":" << JsonDouble(record.mer_loss);
  }
  if (Present(record.eval_value)) {
    out << ",\"eval_metric\":\"" << JsonEscape(record.eval_metric)
        << "\",\"eval_value\":" << JsonDouble(record.eval_value);
  }
  if (Present(record.tables_per_sec)) {
    out << ",\"tables_per_sec\":" << JsonDouble(record.tables_per_sec);
  }
  // A NaN norm normally means "unmeasured", but on a warning record it is a
  // measured non-finite gradient — the whole point of the record — so it
  // must serialize rather than be dropped.
  if (Present(record.grad_norm) || !record.warning.empty()) {
    if (std::isfinite(record.grad_norm)) {
      out << ",\"grad_norm\":" << JsonDouble(record.grad_norm);
    } else {
      out << ",\"grad_norm\":\"" << (std::isnan(record.grad_norm)
                                         ? "nan"
                                         : (record.grad_norm > 0 ? "inf"
                                                                 : "-inf"))
          << '"';
    }
  }
  if (!record.warning.empty()) {
    out << ",\"warning\":\"" << JsonEscape(record.warning) << '"';
  }
  out << ",\"elapsed_sec\":" << JsonDouble(record.elapsed_sec) << '}';
  return out.str();
}

void StderrSink::Emit(const TrainRecord& record) {
  std::ostringstream out;
  char buf[64];
  out << '[' << record.phase << "] step " << record.step;
  if (record.epoch >= 0) out << " epoch " << record.epoch;
  if (Present(record.loss)) {
    std::snprintf(buf, sizeof(buf), " loss %.4f", record.loss);
    out << buf;
  }
  if (Present(record.mlm_loss) || Present(record.mer_loss)) {
    std::snprintf(buf, sizeof(buf), " (mlm %.4f / mer %.4f)",
                  Present(record.mlm_loss) ? record.mlm_loss : 0.0,
                  Present(record.mer_loss) ? record.mer_loss : 0.0);
    out << buf;
  }
  if (Present(record.eval_value)) {
    std::snprintf(buf, sizeof(buf), " %s %.4f", record.eval_metric.c_str(),
                  record.eval_value);
    out << buf;
  }
  if (Present(record.tables_per_sec)) {
    std::snprintf(buf, sizeof(buf), " %.1f tables/s", record.tables_per_sec);
    out << buf;
  }
  if (Present(record.grad_norm) || !record.warning.empty()) {
    std::snprintf(buf, sizeof(buf), " |g| %.3g", record.grad_norm);
    out << buf;
  }
  if (!record.warning.empty()) out << " WARNING: " << record.warning;
  std::snprintf(buf, sizeof(buf), " [%.1fs]", record.elapsed_sec);
  out << buf << '\n';
  std::fputs(out.str().c_str(), stderr);
}

JsonlSink::JsonlSink(const std::string& path)
    : out_(path, std::ios::app) {
  if (!out_.is_open()) {
    TURL_LOG(Error) << "JsonlSink: cannot open " << path;
  }
}

void JsonlSink::Emit(const TrainRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) return;
  // Flush per record: the hub's sinks are never destroyed (leaked
  // singleton), records are low-rate, and a tail -f on the log should see
  // every step as it happens.
  out_ << ToJsonLine(record) << std::endl;
}

void JsonlSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_.is_open()) out_.flush();
}

TelemetryHub::TelemetryHub() {
  if (const char* path = std::getenv("TURL_METRICS_JSONL")) {
    if (*path != '\0') AddOwnedSink(std::make_unique<JsonlSink>(path));
  }
  if (const char* v = std::getenv("TURL_METRICS_STDERR")) {
    if (*v != '\0' && *v != '0') AddOwnedSink(std::make_unique<StderrSink>());
  }
}

TelemetryHub& TelemetryHub::Get() {
  static TelemetryHub* hub = new TelemetryHub();
  return *hub;
}

void TelemetryHub::Emit(const TrainRecord& record) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetCounter(record.phase + ".records")->Inc();
  if (Present(record.loss)) {
    registry.GetGauge(record.phase + ".loss")->Set(record.loss);
  }
  if (Present(record.eval_value)) {
    registry.GetGauge(record.phase + "." + record.eval_metric)
        ->Set(record.eval_value);
  }
  if (Present(record.tables_per_sec)) {
    registry.GetGauge(record.phase + ".tables_per_sec")
        ->Set(record.tables_per_sec);
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (MetricsSink* sink : sinks_) sink->Emit(record);
}

void TelemetryHub::AddSink(MetricsSink* sink) {
  TURL_CHECK(sink != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(sink);
}

void TelemetryHub::RemoveSink(MetricsSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < sinks_.size(); ++i) {
    if (sinks_[i] == sink) {
      sinks_.erase(sinks_.begin() + long(i));
      return;
    }
  }
}

void TelemetryHub::AddOwnedSink(std::unique_ptr<MetricsSink> sink) {
  TURL_CHECK(sink != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(sink.get());
  owned_.push_back(std::move(sink));
}

void EmitRecord(const TrainRecord& record, MetricsSink* extra) {
  TelemetryHub::Get().Emit(record);
  if (extra != nullptr) extra->Emit(record);
}

void RecordTrainHealth(const std::string& phase, int64_t step, double loss,
                       double grad_norm, MetricsSink* extra,
                       double explode_threshold) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  registry.GetGauge("train.grad_norm")->Set(grad_norm);
  std::string warning;
  if (!std::isfinite(grad_norm)) {
    registry.GetCounter("obs.nonfinite_grads")->Inc();
    warning = "non-finite gradient norm";
  } else if (!std::isfinite(loss)) {
    registry.GetCounter("obs.nonfinite_grads")->Inc();
    warning = "non-finite loss";
  } else if (grad_norm > explode_threshold) {
    registry.GetCounter("obs.exploding_grads")->Inc();
    warning = "exploding gradient norm";
  }
  if (warning.empty()) return;
  TrainRecord record;
  record.phase = phase;
  record.step = step;
  if (std::isfinite(loss)) record.loss = loss;
  record.grad_norm = grad_norm;
  record.warning = std::move(warning);
  EmitRecord(record, extra);
}

FinetuneTelemetry::FinetuneTelemetry(std::string phase, MetricsSink* extra)
    : phase_(std::move(phase)), extra_(extra) {
  timer_.LapMillis();  // Start the first epoch's lap.
}

void FinetuneTelemetry::Step(double loss) {
  ++total_steps_;
  ++epoch_steps_;
  epoch_loss_ += loss;
  MetricsRegistry::Get().GetCounter(phase_ + ".steps")->Inc();
}

void FinetuneTelemetry::Step(double loss, double grad_norm) {
  Step(loss);
  RecordTrainHealth(phase_, total_steps_, loss, grad_norm, extra_);
}

void FinetuneTelemetry::EndEpoch(int epoch) {
  const double lap_sec = timer_.LapMillis() / 1e3;
  TrainRecord record;
  record.phase = phase_;
  record.step = total_steps_;
  record.epoch = epoch;
  if (epoch_steps_ > 0) record.loss = epoch_loss_ / double(epoch_steps_);
  if (lap_sec > 0) record.tables_per_sec = double(epoch_steps_) / lap_sec;
  record.elapsed_sec = timer_.ElapsedSeconds();
  EmitRecord(record, extra_);
  epoch_steps_ = 0;
  epoch_loss_ = 0.0;
}

void FinetuneTelemetry::Eval(const std::string& metric, double value) {
  TrainRecord record;
  record.phase = phase_;
  record.step = total_steps_;
  record.eval_metric = metric;
  record.eval_value = value;
  record.elapsed_sec = timer_.ElapsedSeconds();
  EmitRecord(record, extra_);
}

}  // namespace obs
}  // namespace turl
