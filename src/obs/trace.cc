#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/metrics.h"
#include "util/logging.h"

namespace turl {
namespace obs {

namespace {

/// TURL_TRACE=1 (or a TURL_TRACE_JSON path) enables tracing from process
/// start; TURL_TRACE=0 pins it off even against SetEnabled(true).
enum class EnvPolicy { kDefault, kForceOn, kForceOff };

EnvPolicy ReadEnvPolicy() {
  if (const char* v = std::getenv("TURL_TRACE")) {
    if (std::strcmp(v, "0") == 0) return EnvPolicy::kForceOff;
    return EnvPolicy::kForceOn;
  }
  if (const char* path = std::getenv("TURL_TRACE_JSON")) {
    if (*path != '\0') return EnvPolicy::kForceOn;
  }
  return EnvPolicy::kDefault;
}

const EnvPolicy g_env_policy = ReadEnvPolicy();

size_t RingCapacityFromEnv() {
  if (const char* v = std::getenv("TURL_TRACE_BUFFER")) {
    const long long n = std::atoll(v);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 16384;
}

/// splitmix64 — the sampling hash; decisions depend only on (seed, seq).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

thread_local TraceContext tls_context;
thread_local TraceRing* tls_ring = nullptr;

void FormatAnnotationValue(char (&buf)[24], int64_t v) {
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
}

}  // namespace

void ActiveSpan::Annotate(const char* key, const char* value) {
  if (!traced() || n_annotations >= 4) return;
  TraceAnnotation& a = annotations[n_annotations++];
  a.key = key;
  std::snprintf(a.value, sizeof(a.value), "%s", value);
}

void ActiveSpan::Annotate(const char* key, int64_t value) {
  if (!traced() || n_annotations >= 4) return;
  TraceAnnotation& a = annotations[n_annotations++];
  a.key = key;
  FormatAnnotationValue(a.value, value);
}

TraceRing::TraceRing(size_t capacity, uint32_t tid)
    : slots_(std::max<size_t>(capacity, 2)), tid_(tid) {}

void TraceRing::Push(const TraceEvent& event) {
  const uint64_t n = count_.load(std::memory_order_relaxed);
  TraceEvent stamped = event;
  stamped.tid = tid_;
  // Seqlock write (see seqlock.h): a concurrent Snapshot skips the slot
  // instead of reading a torn event.
  slots_[size_t(n % slots_.size())].Store(n, stamped);
  count_.store(n + 1, std::memory_order_release);
}

void TraceRing::Snapshot(std::vector<TraceEvent>* out) const {
  const uint64_t n = count_.load(std::memory_order_acquire);
  const uint64_t cap = slots_.size();
  for (uint64_t i = n > cap ? n - cap : 0; i < n; ++i) {
    // Valid only if the slot still holds logical event i (the writer may
    // have lapped us, or be mid-write).
    TraceEvent copy;
    if (slots_[size_t(i % cap)].TryLoad(i, &copy)) out->push_back(copy);
  }
}

uint64_t TraceRing::dropped() const {
  const uint64_t n = count_.load(std::memory_order_acquire);
  const uint64_t cap = slots_.size();
  return n > cap ? n - cap : 0;
}

void TraceRing::Reset() {
  count_.store(0, std::memory_order_release);
  // Stale slot seqs cannot collide: Snapshot only reads logical indices
  // below the (reset) count, which Push rewrites before they are visible.
}

TraceCollector::TraceCollector(size_t ring_capacity)
    : ring_capacity_(ring_capacity) {}

TraceRing* TraceCollector::ring() {
  if (tls_ring != nullptr) return tls_ring;
  std::lock_guard<std::mutex> lock(mu_);
  auto owned = std::make_shared<TraceRing>(
      ring_capacity_, static_cast<uint32_t>(rings_.size()));
  rings_.push_back(owned);
  tls_ring = owned.get();
  return tls_ring;
}

std::vector<TraceEvent> TraceCollector::Snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) ring->Snapshot(&out);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.span_id < b.span_id;
            });
  return out;
}

uint64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

void TraceCollector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) ring->Reset();
}

std::atomic<bool> Tracer::enabled_{ReadEnvPolicy() == EnvPolicy::kForceOn};

Tracer::Tracer()
    : epoch_(std::chrono::steady_clock::now()),
      collector_(std::make_unique<TraceCollector>(RingCapacityFromEnv())) {
  if (const char* v = std::getenv("TURL_TRACE_SAMPLE")) {
    SetSampler(ParseSamplePeriod(v), /*seed=*/0);
  }
  if (const char* path = std::getenv("TURL_TRACE_JSON")) {
    if (*path != '\0') {
      static std::string* exit_path = new std::string(path);
      std::atexit(+[] {
        if (!WriteChromeTrace(*exit_path)) {
          std::fprintf(stderr, "turl::obs: cannot write trace to %s\n",
                       exit_path->c_str());
        }
      });
    }
  }
}

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetEnabled(bool on) {
  if (on && g_env_policy == EnvPolicy::kForceOff) return;
  if (on) Get();  // Materialize env config (sampler, exporter) up front.
  enabled_.store(on, std::memory_order_relaxed);
}

void Tracer::SetSampler(uint64_t period, uint64_t seed) {
  sample_period_.store(period == 0 ? 1 : period, std::memory_order_relaxed);
  sample_seed_.store(seed, std::memory_order_relaxed);
  trace_seq_.store(0, std::memory_order_relaxed);
}

TraceContext Tracer::StartTrace() {
  if (!Enabled()) return TraceContext();
  const uint64_t seq = trace_seq_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t period = sample_period_.load(std::memory_order_relaxed);
  if (period > 1) {
    const uint64_t seed = sample_seed_.load(std::memory_order_relaxed);
    if (Mix64(seed ^ seq) % period != 0) return TraceContext();
  }
  // Trace ids are 1-based so 0 can mean "untraced".
  return TraceContext{seq + 1, 0};
}

ActiveSpan Tracer::Begin(const char* name, TraceContext parent) {
  ActiveSpan span;
  if (!parent.traced()) return span;
  span.name = name;
  span.trace_id = parent.trace_id;
  span.span_id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  span.parent_id = parent.span_id;
  span.start = std::chrono::steady_clock::now();
  return span;
}

ActiveSpan Tracer::BeginTrace(const char* name) {
  return Begin(name, StartTrace());
}

void Tracer::End(ActiveSpan* span) {
  if (!span->traced()) return;
  const auto end = std::chrono::steady_clock::now();
  TraceEvent event;
  event.name = span->name;
  event.trace_id = span->trace_id;
  event.span_id = span->span_id;
  event.parent_id = span->parent_id;
  event.start_us = ToMicros(span->start);
  event.dur_us =
      std::chrono::duration<double, std::micro>(end - span->start).count();
  event.n_annotations = span->n_annotations;
  for (uint32_t i = 0; i < span->n_annotations; ++i) {
    event.annotations[i] = span->annotations[i];
  }
  collector_->ring()->Push(event);
  span->trace_id = 0;  // Ended spans record nothing twice.
}

void Tracer::RecordManual(
    const char* name, TraceContext parent,
    std::chrono::steady_clock::time_point start,
    std::chrono::steady_clock::time_point end,
    std::initializer_list<std::pair<const char*, int64_t>> annotations) {
  if (!parent.traced()) return;
  ActiveSpan span = Begin(name, parent);
  span.start = start;
  for (const auto& [key, value] : annotations) span.Annotate(key, value);
  TraceEvent event;
  event.name = span.name;
  event.trace_id = span.trace_id;
  event.span_id = span.span_id;
  event.parent_id = span.parent_id;
  event.start_us = ToMicros(start);
  event.dur_us = std::chrono::duration<double, std::micro>(end - start).count();
  event.n_annotations = span.n_annotations;
  for (uint32_t i = 0; i < span.n_annotations; ++i) {
    event.annotations[i] = span.annotations[i];
  }
  collector_->ring()->Push(event);
}

TraceCollector& Tracer::collector() { return *collector_; }

double Tracer::ToMicros(std::chrono::steady_clock::time_point t) const {
  return std::chrono::duration<double, std::micro>(t - epoch_).count();
}

TraceContext CurrentTraceContext() { return tls_context; }

TraceContextScope::TraceContextScope(TraceContext ctx) {
  if (!Tracer::Enabled() || !ctx.traced()) return;
  prev_ = tls_context;
  tls_context = ctx;
  installed_ = true;
}

TraceContextScope::~TraceContextScope() {
  if (installed_) tls_context = prev_;
}

TraceSpan::TraceSpan(const char* name) {
  if (!Tracer::Enabled() || !tls_context.traced()) return;
  span_ = Tracer::Get().Begin(name, tls_context);
  Install();
}

TraceSpan::TraceSpan(NewTraceTag, const char* name) {
  if (!Tracer::Enabled()) return;
  span_ = Tracer::Get().BeginTrace(name);
  if (span_.traced()) Install();
}

void TraceSpan::Install() {
  prev_ = tls_context;
  tls_context = span_.context();
  installed_ = true;
}

TraceSpan::~TraceSpan() {
  if (installed_) tls_context = prev_;
  if (span_.traced()) Tracer::Get().End(&span_);
}

uint64_t ParseSamplePeriod(const char* value) {
  if (value == nullptr || *value == '\0') return 1;
  const char* digits = value;
  if (const char* slash = std::strchr(value, '/')) digits = slash + 1;
  const long long n = std::atoll(digits);
  return n > 1 ? static_cast<uint64_t>(n) : 1;
}

std::string ChromeTraceJson(size_t last_n) {
  std::vector<TraceEvent> events = Tracer::Get().collector().Snapshot();
  if (last_n > 0 && events.size() > last_n) {
    // Snapshot is start-sorted, so the tail is the most recent activity.
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(last_n));
  }
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  // Thread-name metadata so chrome://tracing labels the tracks.
  uint32_t max_tid = 0;
  for (const TraceEvent& e : events) max_tid = std::max(max_tid, e.tid);
  bool first = true;
  if (!events.empty()) {
    for (uint32_t tid = 0; tid <= max_tid; ++tid) {
      out << (first ? "" : ",")
          << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\"turl-thread-"
          << tid << "\"}}";
      first = false;
    }
  }
  char buf[64];
  for (const TraceEvent& e : events) {
    out << (first ? "" : ",") << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
        << ",\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\"turl\"";
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f", e.start_us,
                  e.dur_us);
    out << buf << ",\"args\":{\"trace\":\"" << e.trace_id << "\",\"span\":\""
        << e.span_id << "\",\"parent\":\"" << e.parent_id << '"';
    for (uint32_t i = 0; i < e.n_annotations; ++i) {
      out << ",\"" << JsonEscape(e.annotations[i].key) << "\":\""
          << JsonEscape(e.annotations[i].value) << '"';
    }
    out << "}}";
    first = false;
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

bool WriteChromeTrace(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return false;
  out << ChromeTraceJson() << '\n';
  return out.good();
}

std::string SlowTraceReport(size_t n) {
  const std::vector<TraceEvent> events = Tracer::Get().collector().Snapshot();

  struct TraceSummary {
    const TraceEvent* root = nullptr;
    // Child span durations summed by name, insertion-ordered by first
    // appearance (pipeline order, since events are start-sorted).
    std::vector<std::pair<const char*, double>> stages;
  };
  std::map<uint64_t, TraceSummary> traces;
  for (const TraceEvent& e : events) {
    TraceSummary& t = traces[e.trace_id];
    if (e.parent_id == 0) {
      t.root = &e;
      continue;
    }
    auto it = std::find_if(t.stages.begin(), t.stages.end(),
                           [&](const auto& s) {
                             return std::strcmp(s.first, e.name) == 0;
                           });
    if (it == t.stages.end()) {
      t.stages.emplace_back(e.name, e.dur_us);
    } else {
      it->second += e.dur_us;
    }
  }

  std::vector<const std::pair<const uint64_t, TraceSummary>*> rooted;
  for (const auto& entry : traces) {
    if (entry.second.root != nullptr) rooted.push_back(&entry);
  }
  std::sort(rooted.begin(), rooted.end(), [](const auto* a, const auto* b) {
    return a->second.root->dur_us > b->second.root->dur_us;
  });
  if (rooted.size() > n) rooted.resize(n);

  std::ostringstream out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "-- slowest %zu of %zu traced requests --\n", rooted.size(),
                traces.size());
  out << buf;
  std::snprintf(buf, sizeof(buf), "%-8s %-16s %10s  %s\n", "trace", "root",
                "total_ms", "stage breakdown (ms)");
  out << buf;
  for (const auto* entry : rooted) {
    const TraceSummary& t = entry->second;
    std::snprintf(buf, sizeof(buf), "%-8" PRIu64 " %-16s %10.3f  ",
                  entry->first, t.root->name, t.root->dur_us / 1e3);
    out << buf;
    for (size_t i = 0; i < t.stages.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s%s %.3f", i == 0 ? "" : " | ",
                    t.stages[i].first, t.stages[i].second / 1e3);
      out << buf;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace obs
}  // namespace turl
