#ifndef TURL_OBS_PROFILER_H_
#define TURL_OBS_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace turl {
namespace obs {

/// Aggregated statistics for one span name across all executions and threads.
/// `total_ms` includes time spent in nested child spans; `self_ms` excludes
/// it, so a flame-style breakdown sums `self_ms` to wall time.
struct SpanStats {
  std::string name;
  int64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
};

/// Process-wide scoped-span profiler. Spans are declared with
/// TURL_PROFILE_SCOPE("name") and aggregated by name; nesting is tracked per
/// thread so parents learn how much of their time was spent in children.
///
/// Disabled by default: the only per-span cost is one relaxed atomic load and
/// a branch in the ScopedSpan constructor. Enable programmatically with
/// SetEnabled(true) or via the environment: TURL_PROFILE=1 enables at process
/// start, TURL_PROFILE=0 pins it off (the kill switch benches respect).
class Profiler {
 public:
  static Profiler& Get();

  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }
  /// SetEnabled(true) is a no-op when the environment pinned profiling off.
  static void SetEnabled(bool on);

  /// Folds one finished span execution into the aggregate for `name`.
  void Record(const char* name, double total_ms, double self_ms);

  /// Aggregates sorted by total_ms descending.
  std::vector<SpanStats> Report() const;
  /// Human-readable span table (header + one line per span).
  std::string ReportTable() const;
  /// [{"name":...,"count":...,"total_ms":...,"self_ms":...,"p50_ms":...,
  ///   "p95_ms":...,"max_ms":...}, ...] sorted by total_ms descending.
  std::string ReportJson() const;
  void Reset();

 private:
  struct Agg;
  Profiler();

  static std::atomic<bool> enabled_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Agg>> spans_;
};

/// RAII span. Use via TURL_PROFILE_SCOPE; constructing with profiling
/// disabled costs a single branch and records nothing, even if profiling is
/// enabled before the scope closes.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : name_(nullptr) {
    if (Profiler::Enabled()) Begin(name);
  }
  ~ScopedSpan() {
    if (name_ != nullptr) End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

/// Writes {"spans":[...],"metrics":{...}} (span report + the global
/// MetricsRegistry) to `path`. Returns false if the file cannot be written.
bool WriteObsJson(const std::string& path);

}  // namespace obs
}  // namespace turl

#define TURL_OBS_CONCAT_INNER(a, b) a##b
#define TURL_OBS_CONCAT(a, b) TURL_OBS_CONCAT_INNER(a, b)

/// Times the enclosing scope under `name` (a string literal that outlives the
/// scope). Nested scopes attribute their time to the parent's child total.
#define TURL_PROFILE_SCOPE(name) \
  ::turl::obs::ScopedSpan TURL_OBS_CONCAT(turl_profile_scope_, __LINE__)(name)

#endif  // TURL_OBS_PROFILER_H_
