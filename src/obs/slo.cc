#include "obs/slo.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/metrics.h"
#include "obs/server/handlers.h"
#include "obs/telemetry.h"
#include "util/logging.h"

namespace turl {
namespace obs {

namespace {

/// TURL_SLO=0 pins SLI recording off even against SetEnabled(true).
bool ReadEnvPinnedOff() {
  const char* v = std::getenv("TURL_SLO");
  return v != nullptr && std::strcmp(v, "0") == 0;
}

const bool g_pinned_off = ReadEnvPinnedOff();

/// Latency bucket upper bounds, ms (exclusive of the +inf overflow bucket).
/// Coarser than the registry Histogram — a window quantile only needs to be
/// right to ~±15% to rank against an SLO threshold, and 26 bounds keep a
/// bucket small enough to merge with a handful of adds.
constexpr double kLatBoundsMs[] = {
    0.05, 0.1, 0.2, 0.5, 1,   2,   3,    5,    8,    12,   18,   27,  40,
    60,   90,  130, 200, 300, 450, 700,  1000, 1500, 2500, 4000, 6000, 10000};
constexpr int kNumLatBounds = sizeof(kLatBoundsMs) / sizeof(kLatBoundsMs[0]);
constexpr int kNumLatBuckets = kNumLatBounds + 1;  // +inf overflow.

int LatBucketIndex(double ms) {
  const double* end = kLatBoundsMs + kNumLatBounds;
  return static_cast<int>(std::upper_bound(kLatBoundsMs, end, ms) -
                          kLatBoundsMs);
}

const char* WindowLabel(int horizon_s) {
  switch (horizon_s) {
    case 10: return "10s";
    case 60: return "1m";
    case 300: return "5m";
    default: return nullptr;  // Caller formats "<n>s".
  }
}

std::string WindowLabelString(int horizon_s) {
  if (const char* label = WindowLabel(horizon_s)) return label;
  return std::to_string(horizon_s) + "s";
}

Counter* BurnCounter() {
  static Counter* c = MetricsRegistry::Get().GetCounter("obs.slo_burns");
  return c;
}

}  // namespace

SliOutcome OutcomeFromStatusName(const char* status) {
  if (status == nullptr) return SliOutcome::kError;
  if (std::strcmp(status, "ok") == 0) return SliOutcome::kOk;
  if (std::strcmp(status, "overloaded") == 0) return SliOutcome::kShed;
  if (std::strcmp(status, "deadline_exceeded") == 0) {
    return SliOutcome::kDeadlineMiss;
  }
  return SliOutcome::kError;
}

/// One second of one stream. Merging two buckets is field-wise addition
/// (max for max/exemplar), which is what makes a horizon snapshot O(ring).
struct Bucket {
  int64_t epoch_s = -1;  ///< Second this bucket holds; -1 = never used.
  uint32_t total = 0;
  uint32_t ok = 0;
  uint32_t shed = 0;
  uint32_t deadline_miss = 0;
  uint32_t error = 0;
  double sum_ms = 0.0;
  double max_ms = 0.0;
  /// Worst traced sample this second (trace id 0 = none yet).
  double exemplar_ms = 0.0;
  uint64_t exemplar_trace = 0;
  uint32_t lat[kNumLatBuckets] = {};

  void ResetTo(int64_t second) {
    *this = Bucket();
    epoch_s = second;
  }
};

struct SliEngine::Stream {
  const char* name = nullptr;
  mutable std::mutex mu;
  Bucket buckets[SliEngine::kWindowS];
};

std::atomic<bool> SliEngine::enabled_{!ReadEnvPinnedOff()};

SliEngine& SliEngine::Get() {
  static SliEngine* engine = new SliEngine();
  return *engine;
}

void SliEngine::SetEnabled(bool on) {
  if (g_pinned_off) return;
  enabled_.store(on, std::memory_order_relaxed);
}

SliEngine::SliEngine() {
  FindOrCreate(kAllStream);  // Slot 0: the aggregate every Record feeds.
}

SliEngine::~SliEngine() = default;

int64_t SliEngine::NowS() const {
  {
    std::lock_guard<std::mutex> lock(clock_mu_);
    if (clock_) return clock_();
  }
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SliEngine::SetClockForTest(std::function<int64_t()> now_s) {
  std::lock_guard<std::mutex> lock(clock_mu_);
  clock_ = std::move(now_s);
}

SliEngine::Stream* SliEngine::FindOrCreate(const char* name) {
  std::lock_guard<std::mutex> lock(streams_mu_);
  for (const auto& stream : streams_) {
    if (stream->name == name || std::strcmp(stream->name, name) == 0) {
      return stream.get();
    }
  }
  streams_.push_back(std::make_unique<Stream>());
  streams_.back()->name = name;
  return streams_.back().get();
}

const SliEngine::Stream* SliEngine::Find(const char* name) const {
  std::lock_guard<std::mutex> lock(streams_mu_);
  for (const auto& stream : streams_) {
    if (stream->name == name || std::strcmp(stream->name, name) == 0) {
      return stream.get();
    }
  }
  return nullptr;
}

namespace {

void RecordIntoBucket(Bucket* bucket, int64_t now_s, SliOutcome outcome,
                      double latency_ms, uint64_t trace_id) {
  if (bucket->epoch_s != now_s) bucket->ResetTo(now_s);
  ++bucket->total;
  switch (outcome) {
    case SliOutcome::kOk: ++bucket->ok; break;
    case SliOutcome::kShed: ++bucket->shed; break;
    case SliOutcome::kDeadlineMiss: ++bucket->deadline_miss; break;
    case SliOutcome::kError: ++bucket->error; break;
  }
  if (latency_ms < 0.0) latency_ms = 0.0;
  bucket->sum_ms += latency_ms;
  bucket->max_ms = std::max(bucket->max_ms, latency_ms);
  ++bucket->lat[LatBucketIndex(latency_ms)];
  if (trace_id != 0 &&
      (bucket->exemplar_trace == 0 || latency_ms >= bucket->exemplar_ms)) {
    bucket->exemplar_ms = latency_ms;
    bucket->exemplar_trace = trace_id;
  }
}

}  // namespace

void SliEngine::Record(const char* stream, SliOutcome outcome,
                       double latency_ms, uint64_t trace_id) {
  if (!Enabled()) return;
  const int64_t now_s = NowS();
  Stream* named = FindOrCreate(stream);
  Stream* all = FindOrCreate(kAllStream);
  for (Stream* s : {named, all}) {
    if (s == nullptr) continue;
    std::lock_guard<std::mutex> lock(s->mu);
    RecordIntoBucket(&s->buckets[size_t(now_s % kWindowS)], now_s, outcome,
                     latency_ms, trace_id);
    if (named == all) break;  // Recording directly into "all": once only.
  }
}

namespace {

/// Quantile of the merged latency histogram by linear interpolation inside
/// the hit bucket, clamped to [0, max_ms] (the overflow bucket interpolates
/// toward the observed max).
double MergedQuantile(const uint64_t (&lat)[kNumLatBuckets], uint64_t total,
                      double p, double max_ms) {
  if (total == 0) return 0.0;
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(p * static_cast<double>(total) + 0.5));
  uint64_t cum = 0;
  for (int b = 0; b < kNumLatBuckets; ++b) {
    if (lat[b] == 0) continue;
    if (cum + lat[b] >= rank) {
      const double lo = b == 0 ? 0.0 : kLatBoundsMs[b - 1];
      const double hi = b < kNumLatBounds ? kLatBoundsMs[b] : max_ms;
      const double frac =
          static_cast<double>(rank - cum) / static_cast<double>(lat[b]);
      return std::min(max_ms, lo + frac * (std::max(hi, lo) - lo));
    }
    cum += lat[b];
  }
  return max_ms;
}

}  // namespace

SliSnapshot SliEngine::Snapshot(const char* stream, int horizon_s) const {
  SliSnapshot out;
  out.stream = stream;
  out.horizon_s = std::min(horizon_s, kWindowS);
  const Stream* s = Find(stream);
  if (s == nullptr) return out;
  const int64_t now_s = NowS();
  const int64_t oldest = now_s - out.horizon_s + 1;  // Inclusive of "now".

  uint64_t lat[kNumLatBuckets] = {};
  double sum_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const Bucket& b : s->buckets) {
      if (b.epoch_s < oldest || b.epoch_s > now_s) continue;
      out.total += b.total;
      out.ok += b.ok;
      out.shed += b.shed;
      out.deadline_miss += b.deadline_miss;
      out.error += b.error;
      sum_ms += b.sum_ms;
      out.max_ms = std::max(out.max_ms, b.max_ms);
      for (int i = 0; i < kNumLatBuckets; ++i) lat[i] += b.lat[i];
      if (b.exemplar_trace != 0 && (out.exemplar_trace_id == 0 ||
                                    b.exemplar_ms >= out.exemplar_ms)) {
        out.exemplar_ms = b.exemplar_ms;
        out.exemplar_trace_id = b.exemplar_trace;
      }
    }
  }
  if (out.total > 0) {
    const double n = static_cast<double>(out.total);
    out.availability = static_cast<double>(out.ok) / n;
    out.shed_rate = static_cast<double>(out.shed) / n;
    out.deadline_miss_rate = static_cast<double>(out.deadline_miss) / n;
    out.mean_ms = sum_ms / n;
    const uint64_t total = static_cast<uint64_t>(out.total);
    out.p50_ms = MergedQuantile(lat, total, 0.50, out.max_ms);
    out.p90_ms = MergedQuantile(lat, total, 0.90, out.max_ms);
    out.p99_ms = MergedQuantile(lat, total, 0.99, out.max_ms);
  }
  return out;
}

std::vector<const char*> SliEngine::streams() const {
  std::vector<const char*> out;
  std::lock_guard<std::mutex> lock(streams_mu_);
  out.reserve(streams_.size());
  for (const auto& stream : streams_) out.push_back(stream->name);
  return out;
}

std::vector<SliSnapshot> SliEngine::SnapshotAll(int horizon_s) const {
  std::vector<SliSnapshot> out;
  for (const char* name : streams()) {
    SliSnapshot snap = Snapshot(name, horizon_s);
    if (snap.total > 0 || std::strcmp(name, kAllStream) == 0) {
      out.push_back(snap);
    }
  }
  return out;
}

void SliEngine::Reset() {
  std::lock_guard<std::mutex> lock(streams_mu_);
  for (const auto& stream : streams_) {
    std::lock_guard<std::mutex> bucket_lock(stream->mu);
    for (Bucket& b : stream->buckets) b = Bucket();
  }
}

std::string SliMetricsText(const SliEngine& engine) {
  struct Family {
    const char* name;
    const char* help;
    double (*value)(const SliSnapshot&);
    bool exemplar;
  };
  static const Family kFamilies[] = {
      {"turl_slo_requests", "Requests observed in the trailing window.",
       [](const SliSnapshot& s) { return double(s.total); }, false},
      {"turl_slo_availability", "ok / total over the trailing window.",
       [](const SliSnapshot& s) { return s.availability; }, false},
      {"turl_slo_shed_rate", "Shed (overloaded) fraction over the window.",
       [](const SliSnapshot& s) { return s.shed_rate; }, false},
      {"turl_slo_deadline_miss_rate",
       "Deadline-missed fraction over the window.",
       [](const SliSnapshot& s) { return s.deadline_miss_rate; }, false},
      {"turl_slo_p50_ms", "Window latency p50, ms.",
       [](const SliSnapshot& s) { return s.p50_ms; }, false},
      {"turl_slo_p90_ms", "Window latency p90, ms.",
       [](const SliSnapshot& s) { return s.p90_ms; }, false},
      {"turl_slo_p99_ms",
       "Window latency p99, ms. Exemplar: trace id of the window's worst "
       "traced request (resolve on /tracez).",
       [](const SliSnapshot& s) { return s.p99_ms; }, true},
      {"turl_slo_max_ms", "Window latency max, ms.",
       [](const SliSnapshot& s) { return s.max_ms; }, false},
  };

  // Snapshot every stream x horizon once, then emit family-grouped series
  // (HELP/TYPE must appear exactly once per family).
  std::vector<SliSnapshot> snaps;
  for (int horizon : SliEngine::kHorizonsS) {
    std::vector<SliSnapshot> h = engine.SnapshotAll(horizon);
    snaps.insert(snaps.end(), h.begin(), h.end());
  }
  std::ostringstream out;
  for (const Family& family : kFamilies) {
    out << "# HELP " << family.name << ' ' << family.help << '\n';
    out << "# TYPE " << family.name << " gauge\n";
    for (const SliSnapshot& s : snaps) {
      out << family.name << "{task=\"" << PrometheusLabelEscape(s.stream)
          << "\",window=\"" << WindowLabelString(s.horizon_s) << "\"} "
          << JsonDouble(family.value(s));
      if (family.exemplar && s.exemplar_trace_id != 0) {
        // OpenMetrics-style exemplar: the worst traced request behind this
        // p99, linkable to /tracez?format=json.
        out << " # {trace_id=\"" << s.exemplar_trace_id << "\"} "
            << JsonDouble(s.exemplar_ms);
      }
      out << '\n';
    }
  }
  return out.str();
}

SloWatchdog& SloWatchdog::Get() {
  static SloWatchdog* watchdog = new SloWatchdog();
  return *watchdog;
}

SloWatchdog::SloWatchdog(SliEngine* engine)
    : engine_(engine != nullptr ? engine : &SliEngine::Get()) {}

SloWatchdog::~SloWatchdog() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, state] : targets_) {
    server::HealthRegistry::Get().Remove(state.probe_id);
  }
  targets_.clear();
}

int SloWatchdog::AddTarget(SloTarget target) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_id_++;
  TargetState state;
  state.target = std::move(target);
  const std::string probe_name = "slo." + state.target.name;
  // The probe re-evaluates the target on every /healthz scrape — readiness
  // flips as soon as the window degrades, no Tick() needed in the loop.
  state.probe_id = server::HealthRegistry::Get().Add(
      probe_name, [this, id](std::string* detail) {
        const Evaluation eval = EvaluateAndLatch(id);
        *detail = eval.detail;
        return eval.ok;
      });
  targets_.emplace(id, std::move(state));
  return id;
}

void SloWatchdog::RemoveTarget(int id) {
  int probe_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = targets_.find(id);
    if (it == targets_.end()) return;
    probe_id = it->second.probe_id;
    targets_.erase(it);
  }
  server::HealthRegistry::Get().Remove(probe_id);
}

size_t SloWatchdog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return targets_.size();
}

SloWatchdog::Evaluation SloWatchdog::Evaluate(const SloTarget& target) const {
  const SliSnapshot s =
      engine_->Snapshot(target.stream.c_str(), target.horizon_s);
  Evaluation eval;
  eval.name = "slo." + target.name;
  const std::string window = WindowLabelString(target.horizon_s);
  std::ostringstream detail;
  if (s.total < target.min_requests) {
    // No traffic is not an outage: an idle service stays ready.
    detail << "idle (n=" << s.total << " < " << target.min_requests << ", "
           << window << ")";
    eval.ok = true;
    eval.detail = detail.str();
    return eval;
  }
  auto fail = [&](const char* what, double got, const char* cmp,
                  double bound) {
    eval.ok = false;
    if (detail.tellp() > 0) detail << "; ";
    detail << what << ' ' << got << ' ' << cmp << ' ' << bound;
  };
  if (target.min_availability >= 0.0 &&
      s.availability < target.min_availability) {
    fail("availability", s.availability, "<", target.min_availability);
  }
  if (target.max_shed_rate >= 0.0 && s.shed_rate > target.max_shed_rate) {
    fail("shed_rate", s.shed_rate, ">", target.max_shed_rate);
  }
  if (target.max_deadline_miss_rate >= 0.0 &&
      s.deadline_miss_rate > target.max_deadline_miss_rate) {
    fail("deadline_miss_rate", s.deadline_miss_rate, ">",
         target.max_deadline_miss_rate);
  }
  if (target.max_p99_ms >= 0.0 && s.p99_ms > target.max_p99_ms) {
    fail("p99_ms", s.p99_ms, ">", target.max_p99_ms);
  }
  if (eval.ok) {
    detail << "ok (n=" << s.total << ", avail=" << s.availability
           << ", p99=" << s.p99_ms << "ms, " << window << ")";
  } else {
    detail << " (n=" << s.total << ", " << window << ")";
  }
  eval.detail = detail.str();
  return eval;
}

SloWatchdog::Evaluation SloWatchdog::EvaluateAndLatch(int id) {
  SloTarget target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = targets_.find(id);
    if (it == targets_.end()) {
      // Raced RemoveTarget; report ready so a dying probe cannot wedge
      // /healthz.
      return Evaluation{"slo.<removed>", true, "target removed"};
    }
    target = it->second.target;
  }
  Evaluation eval = Evaluate(target);
  bool burn_edge = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = targets_.find(id);
    if (it != targets_.end()) {
      TargetState& state = it->second;
      if (!eval.ok && !state.burning) {
        state.burning = true;
        state.since_s = engine_->NowS();
        state.reason = eval.detail;
        burn_edge = true;
      } else if (eval.ok && state.burning) {
        state.burning = false;
        state.reason.clear();
      }
    }
  }
  if (burn_edge) {
    // Burn-edge telemetry: once per transition, not once per scrape.
    BurnCounter()->Inc();
    TrainRecord record;
    record.phase = "slo";
    record.warning = "slo burn: " + eval.name + ": " + eval.detail;
    TelemetryHub::Get().Emit(record);
    TURL_LOG(Warning) << "SLO burn: " << eval.name << ": " << eval.detail;
  }
  return eval;
}

std::vector<SloWatchdog::Evaluation> SloWatchdog::Tick() {
  std::vector<int> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(targets_.size());
    for (const auto& [id, state] : targets_) ids.push_back(id);
  }
  std::vector<Evaluation> out;
  out.reserve(ids.size());
  for (int id : ids) out.push_back(EvaluateAndLatch(id));
  size_t burning = 0;
  for (const Evaluation& eval : out) burning += eval.ok ? 0 : 1;
  MetricsRegistry::Get().GetGauge("obs.slo_burning")->Set(double(burning));
  return out;
}

std::vector<SloWatchdog::Burn> SloWatchdog::ActiveBurns() const {
  std::vector<Burn> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, state] : targets_) {
    if (state.burning) {
      out.push_back(Burn{"slo." + state.target.name, state.reason,
                         state.since_s});
    }
  }
  return out;
}

}  // namespace obs
}  // namespace turl
