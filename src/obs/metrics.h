#ifndef TURL_OBS_METRICS_H_
#define TURL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace turl {
namespace obs {

/// Monotonically increasing integer metric. All methods are thread-safe and
/// lock-free; pointers returned by the registry stay valid for its lifetime.
class Counter {
 public:
  void Inc(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins floating-point metric (e.g. current loss, tables/sec).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Buckets are defined by ascending upper bounds
/// (inclusive) with an implicit +inf overflow bucket; percentiles are
/// estimated by linear interpolation inside the hit bucket and clamped to the
/// observed min/max. Thread-safe via an internal mutex — observations are
/// cheap (a binary search plus a few writes) but not lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  int64_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  double Mean() const;
  /// p in [0, 1]; returns 0 when empty.
  double Percentile(double p) const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<int64_t> BucketCounts() const;
  void Reset();

  /// Exponential bounds covering sub-microsecond spans to minutes, in ms.
  static std::vector<double> DefaultLatencyBucketsMs();

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Process-wide named-metric registry. Get*() lazily creates the metric on
/// first use and always returns the same pointer for the same name; creating
/// a name as one kind and fetching it as another is a fatal error.
class MetricsRegistry {
 public:
  /// The global registry used by the library's built-in instrumentation.
  static MetricsRegistry& Get();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds);

  /// Help text for the metric's `# HELP` exposition line. Metrics without an
  /// explicit help get a generated one, so every exposition family carries a
  /// HELP line either way.
  void SetHelp(const std::string& name, std::string help);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,
  /// p50,p95,p99,max}}} — keys sorted, stable across runs.
  std::string ToJson() const;
  /// Human-readable dump, one metric per line, for end-of-run summaries.
  std::string ToTable() const;
  /// Prometheus text exposition format — what /metrics serves. Conformant
  /// with the text format spec: every family gets `# HELP` and `# TYPE`
  /// lines, names are prefixed with "turl_" and sanitized to
  /// [a-zA-Z_:][a-zA-Z0-9_:]* (sanitization collisions get a _dupN suffix so
  /// a family never appears twice), label values and help text are escaped,
  /// and histograms export cumulative _bucket{le=...} series ending at
  /// le="+Inf" plus _sum/_count.
  std::string ToPrometheusText() const;
  /// Zeroes every metric but keeps the (stable) metric pointers.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;
};

/// Prometheus metric-name sanitization: "turl_" + name with every character
/// outside [a-zA-Z0-9_:] replaced by '_'. Exposed for the conformance test.
std::string PrometheusName(const std::string& name);
/// Prometheus label-value escaping: backslash, double-quote and newline.
std::string PrometheusLabelEscape(const std::string& value);
/// Prometheus HELP-text escaping: backslash and newline.
std::string PrometheusHelpEscape(const std::string& text);

/// JSON string-body escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s);
/// Formats a finite double compactly; NaN/inf become null (JSON has neither).
std::string JsonDouble(double v);

}  // namespace obs
}  // namespace turl

#endif  // TURL_OBS_METRICS_H_
