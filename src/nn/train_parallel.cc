#include "nn/train_parallel.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "rt/thread_pool.h"
#include "util/logging.h"

namespace turl {
namespace nn {

namespace {

std::mutex g_mu;
std::unique_ptr<rt::ThreadPool> g_pool;
int g_threads = 0;  // 0 = not yet resolved.

int ResolveFromEnv() {
  if (const char* env = std::getenv("TURL_TRAIN_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  // Sequential by default: training parallelism is opt-in, so a plain run
  // behaves exactly like every release before the executor existed.
  return 1;
}

int ThreadsLocked() {
  if (g_threads == 0) g_threads = ResolveFromEnv();
  return g_threads;
}

thread_local GradShard* tls_shard = nullptr;

}  // namespace

int TrainThreads() {
  std::lock_guard<std::mutex> lock(g_mu);
  return ThreadsLocked();
}

void SetTrainThreads(int n) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_pool.reset();
  g_threads = n > 0 ? n : ResolveFromEnv();
}

rt::ThreadPool* TrainPool() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (ThreadsLocked() <= 1) return nullptr;
  if (!g_pool) g_pool = std::make_unique<rt::ThreadPool>(g_threads);
  return g_pool.get();
}

GradShard::GradShard(const std::vector<const ParamStore*>& stores) {
  for (const ParamStore* store : stores) {
    TURL_CHECK(store != nullptr);
    for (const auto& [name, tensor] : store->params()) {
      TensorImpl* impl = tensor.impl().get();
      const auto [it, inserted] = index_.emplace(impl, slots_.size());
      (void)it;
      TURL_CHECK(inserted) << "parameter registered twice: " << name;
      Slot slot;
      slot.impl = impl;
      slot.buf.assign(impl->data.size(), 0.f);
      slots_.push_back(std::move(slot));
    }
  }
}

float* GradShard::Redirect(const TensorImpl* impl) {
  const auto it = index_.find(impl);
  if (it == index_.end()) return nullptr;
  Slot& slot = slots_[it->second];
  slot.dirty = true;
  return slot.buf.data();
}

void GradShard::Reset() {
  for (Slot& slot : slots_) {
    if (!slot.dirty) continue;
    std::fill(slot.buf.begin(), slot.buf.end(), 0.f);
    slot.dirty = false;
  }
}

void GradShard::Reduce(const std::vector<GradShard*>& shards) {
  if (shards.empty()) return;
  const size_t num_params = shards[0]->slots_.size();
  for (const GradShard* shard : shards) {
    TURL_CHECK_EQ(shard->slots_.size(), num_params)
        << "shards reduce only across an identical parameter layout";
  }
  for (size_t p = 0; p < num_params; ++p) {
    TensorImpl* impl = shards[0]->slots_[p].impl;
    bool any_dirty = false;
    for (const GradShard* shard : shards) any_dirty |= shard->slots_[p].dirty;
    if (!any_dirty) continue;
    if (impl->grad.empty()) impl->grad.assign(impl->data.size(), 0.f);
    float* out = impl->grad.data();
    const size_t n = impl->grad.size();
    // Ascending shard order, always: whichever thread ran shard s, its
    // contribution lands in the s-th position of this sum.
    for (const GradShard* shard : shards) {
      const Slot& slot = shard->slots_[p];
      if (!slot.dirty) continue;
      TURL_CHECK_EQ(slot.impl, impl);
      const float* in = slot.buf.data();
      for (size_t i = 0; i < n; ++i) out[i] += in[i];
    }
  }
}

ScopedGradShard::ScopedGradShard(GradShard* shard) : previous_(tls_shard) {
  tls_shard = shard;
}

ScopedGradShard::~ScopedGradShard() { tls_shard = previous_; }

GradShard* CurrentGradShard() { return tls_shard; }

uint64_t ShardStreamSeed(uint64_t seed, int64_t step, int64_t shard) {
  // splitmix64-style finalizer over (seed, step, shard) so adjacent logical
  // positions land in decorrelated streams.
  uint64_t z = seed;
  z += 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(step) + 1);
  z += 0xBF58476D1CE4E5B9ull * (static_cast<uint64_t>(shard) + 1);
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

}  // namespace nn
}  // namespace turl
