#ifndef TURL_NN_TRAIN_PARALLEL_H_
#define TURL_NN_TRAIN_PARALLEL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nn/module.h"
#include "nn/tensor.h"

namespace turl {
namespace rt {
class ThreadPool;
}  // namespace rt

namespace nn {

/// Thread count for the training-side parallelism: the tape task-graph
/// executor in Tensor::Backward and the shard fan-out in core::Pretrainer.
/// Resolution: SetTrainThreads() override wins; otherwise $TURL_TRAIN_THREADS
/// (when set and positive); otherwise 1. Unlike the kernel and session pools
/// this defaults to *sequential* — parallel training is opt-in — but any
/// value is bit-identical to 1 by construction (see DESIGN.md §13).
int TrainThreads();

/// Overrides the thread count (n <= 0 re-reads the environment) and drops
/// any previously built pool. Test hook, mirrors kernels::SetKernelThreads.
void SetTrainThreads(int n);

/// Shared pool the training executors schedule on. Built lazily on first
/// use; returns nullptr while TrainThreads() <= 1 (sequential training never
/// spawns a thread).
rt::ThreadPool* TrainPool();

/// Private gradient sink for one data-parallel shard. Constructed over the
/// parameter stores whose gradients the shard may touch, it pre-sizes one
/// zero buffer per parameter; while installed via ScopedGradShard, the op
/// layer redirects leaf-parameter gradient accumulation into those buffers
/// (interior tape nodes are untouched — they are private to the shard's own
/// tape). The index is built once up front so concurrent Redirect calls from
/// other shards' threads never mutate shared state.
class GradShard {
 public:
  explicit GradShard(const std::vector<const ParamStore*>& stores);
  GradShard(const GradShard&) = delete;
  GradShard& operator=(const GradShard&) = delete;

  /// Redirect target for `impl`: the shard-private buffer when `impl` is a
  /// covered parameter, nullptr otherwise. Marks the slot dirty.
  float* Redirect(const TensorImpl* impl);

  /// Zeroes every buffer touched since construction / the last Reset.
  void Reset();

  /// Accumulates every dirty shard buffer into the real parameter grads in
  /// a pinned order: parameters in store-registration order, and for each
  /// parameter the shards in ascending index order — the same sums in the
  /// same order no matter how many threads ran the shards. All shards must
  /// share a layout (constructed from the same stores in the same order).
  static void Reduce(const std::vector<GradShard*>& shards);

 private:
  struct Slot {
    TensorImpl* impl;
    std::vector<float> buf;
    bool dirty = false;
  };
  std::vector<Slot> slots_;
  std::unordered_map<const TensorImpl*, size_t> index_;
};

/// Installs `shard` as the current thread's gradient redirect target for the
/// scope's lifetime. While installed, Tensor::Backward on this thread always
/// runs its tape sequentially (the shards themselves are the parallel axis).
class ScopedGradShard {
 public:
  explicit ScopedGradShard(GradShard* shard);
  ~ScopedGradShard();
  ScopedGradShard(const ScopedGradShard&) = delete;
  ScopedGradShard& operator=(const ScopedGradShard&) = delete;

 private:
  GradShard* previous_;
};

/// The current thread's installed shard, or nullptr.
GradShard* CurrentGradShard();

/// Decorrelated per-(seed, step, shard) RNG stream id for sharded data
/// parallelism: depends only on logical position, never on thread count or
/// schedule, so shard RNG is reproducible under any parallelism.
uint64_t ShardStreamSeed(uint64_t seed, int64_t step, int64_t shard);

}  // namespace nn
}  // namespace turl

#endif  // TURL_NN_TRAIN_PARALLEL_H_
