#include "nn/module.h"

#include <cmath>

#include "util/logging.h"

namespace turl {
namespace nn {

Tensor ParamStore::Register(const std::string& name, Tensor t) {
  TURL_CHECK(!Contains(name)) << "duplicate parameter: " << name;
  t.set_requires_grad(true);
  params_.emplace_back(name, t);
  return t;
}

Tensor ParamStore::CreateNormal(const std::string& name, Shape shape,
                                float stddev, Rng* rng) {
  Tensor t = Tensor::Zeros(std::move(shape));
  float* d = t.data();
  for (int64_t i = 0; i < t.numel(); ++i)
    d[i] = static_cast<float>(rng->Normal(0.0, stddev));
  return Register(name, t);
}

Tensor ParamStore::CreateZeros(const std::string& name, Shape shape) {
  return Register(name, Tensor::Zeros(std::move(shape)));
}

Tensor ParamStore::CreateFull(const std::string& name, Shape shape,
                              float value) {
  return Register(name, Tensor::Full(std::move(shape), value));
}

Tensor ParamStore::Get(const std::string& name) const {
  for (const auto& [n, t] : params_) {
    if (n == name) return t;
  }
  TURL_LOG(Fatal) << "parameter not found: " << name;
  return Tensor();
}

bool ParamStore::Contains(const std::string& name) const {
  for (const auto& [n, t] : params_) {
    if (n == name) return true;
  }
  return false;
}

int64_t ParamStore::TotalParameters() const {
  int64_t total = 0;
  for (const auto& [n, t] : params_) total += t.numel();
  return total;
}

void ParamStore::ZeroGrad() {
  for (auto& [n, t] : params_) t.ZeroGrad();
}

Linear::Linear(ParamStore* store, const std::string& prefix, int64_t in_dim,
               int64_t out_dim, Rng* rng)
    // Xavier-style scale keeps activations stable without pre-training.
    : weight_(store->CreateNormal(prefix + ".weight", {in_dim, out_dim},
                                  std::sqrt(2.f / float(in_dim + out_dim)),
                                  rng)),
      bias_(store->CreateZeros(prefix + ".bias", {out_dim})) {}

Tensor Linear::Forward(const Tensor& x) const {
  return AddBias(MatMul(x, weight_), bias_);
}

Embedding::Embedding(ParamStore* store, const std::string& prefix,
                     int64_t vocab, int64_t dim, Rng* rng)
    : weight_(store->CreateNormal(prefix + ".weight", {vocab, dim}, 0.02f,
                                  rng)) {}

Tensor Embedding::Forward(const std::vector<int>& ids) const {
  return EmbeddingLookup(weight_, ids);
}

LayerNorm::LayerNorm(ParamStore* store, const std::string& prefix, int64_t dim)
    : gamma_(store->CreateFull(prefix + ".gamma", {dim}, 1.f)),
      beta_(store->CreateZeros(prefix + ".beta", {dim})) {}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return LayerNormOp(x, gamma_, beta_);
}

TransformerLayer::TransformerLayer(ParamStore* store, const std::string& prefix,
                                   int64_t d_model, int64_t d_intermediate,
                                   int num_heads, Rng* rng)
    : num_heads_(num_heads),
      wq_(store, prefix + ".attn.wq", d_model, d_model, rng),
      wk_(store, prefix + ".attn.wk", d_model, d_model, rng),
      wv_(store, prefix + ".attn.wv", d_model, d_model, rng),
      wo_(store, prefix + ".attn.wo", d_model, d_model, rng),
      ff1_(store, prefix + ".ff.fc1", d_model, d_intermediate, rng),
      ff2_(store, prefix + ".ff.fc2", d_intermediate, d_model, rng),
      ln_attn_(store, prefix + ".ln_attn", d_model),
      ln_ff_(store, prefix + ".ln_ff", d_model) {
  TURL_CHECK_EQ(d_model % num_heads, 0);
}

Tensor TransformerLayer::Forward(const Tensor& x,
                                 const std::vector<float>& additive_mask,
                                 float dropout_p, bool training,
                                 Rng* rng) const {
  Tensor q = wq_.Forward(x);
  Tensor k = wk_.Forward(x);
  Tensor v = wv_.Forward(x);
  Tensor attn = MultiHeadAttention(q, k, v, additive_mask, num_heads_);
  attn = wo_.Forward(attn);
  attn = Dropout(attn, dropout_p, training, rng);
  Tensor h = ln_attn_.Forward(Add(x, attn));

  Tensor ff = ff2_.Forward(Gelu(ff1_.Forward(h)));
  ff = Dropout(ff, dropout_p, training, rng);
  return ln_ff_.Forward(Add(h, ff));
}

TransformerEncoder::TransformerEncoder(ParamStore* store,
                                       const std::string& prefix,
                                       int num_layers, int64_t d_model,
                                       int64_t d_intermediate, int num_heads,
                                       Rng* rng) {
  layers_.reserve(static_cast<size_t>(num_layers));
  for (int i = 0; i < num_layers; ++i) {
    layers_.emplace_back(store, prefix + ".layer" + std::to_string(i), d_model,
                         d_intermediate, num_heads, rng);
  }
}

Tensor TransformerEncoder::Forward(const Tensor& x,
                                   const std::vector<float>& additive_mask,
                                   float dropout_p, bool training,
                                   Rng* rng) const {
  Tensor h = x;
  for (const auto& layer : layers_) {
    h = layer.Forward(h, additive_mask, dropout_p, training, rng);
  }
  return h;
}

float ClipGradNorm(ParamStore* store, float max_norm) {
  double total = 0.0;
  for (auto& [name, t] : store->params()) {
    const auto& g = t.grad_vector();
    for (float v : g) total += double(v) * double(v);
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.f) {
    const float scale = max_norm / norm;
    for (auto& [name, t] : store->params()) {
      Tensor tt = t;
      if (!tt.has_grad()) continue;
      float* g = tt.grad();
      for (int64_t i = 0; i < tt.numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

}  // namespace nn
}  // namespace turl
