#include "nn/tensor.h"

#include <algorithm>
#include <unordered_set>

#include <unordered_map>

#include "nn/kernels/arena.h"
#include "nn/train_parallel.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "rt/task_graph.h"
#include "rt/thread_pool.h"
#include "util/logging.h"
#include "util/rng.h"

namespace turl {
namespace nn {

namespace {

/// Lowers the tape (in reverse topological order) to a rt::TaskGraph whose
/// edges make any thread count bit-identical to the sequential loop:
///
///  - Task ids are assigned in sequential execution order, and TaskGraph
///    drains its ready set smallest-id-first, so with no contention the
///    schedule *is* the sequential schedule.
///  - For every gradient buffer, all of its writers are chained in that same
///    order: node X's consumers c1..ck (which accumulate into X->grad)
///    get edges c_i -> c_{i+1}, and X's own task additionally depends on its
///    last writer. Chains make every write/write and write/read conflict a
///    graph edge — float accumulation into a shared parent happens in the
///    pinned sequential order, without a single lock in the hot path — while
///    leaving genuinely independent branches (MLM vs. MER head, attention
///    vs. FFN grads) free to overlap.
void RunTapeTaskGraph(const std::vector<TensorImpl*>& topo,
                      rt::ThreadPool* pool) {
  rt::TaskGraph graph;
  // Latest task id that accumulates into each node's grad (leaf parameters
  // included — they never get a task of their own but their writers still
  // form a chain).
  std::unordered_map<TensorImpl*, int> last_writer;
  last_writer.reserve(topo.size());
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    TensorImpl* node = *it;
    if (!node->backward_fn) continue;
    const int id = graph.AddTask([node] {
      // Same skip as the sequential loop: by the time this task is ready,
      // every accumulation into node->grad has happened, so "still empty"
      // means "received no upstream gradient this pass".
      if (!node->grad.empty()) node->backward_fn();
    });
    const auto writer = last_writer.find(node);
    if (writer != last_writer.end()) graph.AddEdge(writer->second, id);
    for (const std::shared_ptr<TensorImpl>& parent : node->parents) {
      const auto [slot, inserted] = last_writer.try_emplace(parent.get(), id);
      if (!inserted && slot->second != id) {  // != id: e.g. Mul(a, a).
        graph.AddEdge(slot->second, id);
        slot->second = id;
      }
    }
  }
  graph.Run(pool);
}

}  // namespace

TensorImpl::~TensorImpl() {
  if (!pooled) return;
  kernels::RecycleBuffer(std::move(data));
  kernels::RecycleBuffer(std::move(grad));
}

int64_t ShapeNumel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::string s = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(shape[i]);
  }
  s += "]";
  return s;
}

Tensor Tensor::Zeros(Shape shape) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data.assign(static_cast<size_t>(ShapeNumel(impl->shape)), 0.f);
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t = Zeros(std::move(shape));
  std::fill(t.impl_->data.begin(), t.impl_->data.end(), value);
  return t;
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values) {
  TURL_CHECK_EQ(ShapeNumel(shape), static_cast<int64_t>(values.size()));
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(values);
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

Tensor Tensor::Scalar(float value) { return FromVector({1}, {value}); }

Tensor Tensor::Random(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = Zeros(std::move(shape));
  float* d = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) d[i] = rng.UniformFloat(lo, hi);
  return t;
}

const Shape& Tensor::shape() const {
  TURL_CHECK(defined());
  return impl_->shape;
}

int64_t Tensor::ndim() const { return static_cast<int64_t>(shape().size()); }

int64_t Tensor::dim(int i) const {
  TURL_CHECK(defined());
  TURL_CHECK_GE(i, 0);
  TURL_CHECK_LT(i, static_cast<int>(impl_->shape.size()));
  return impl_->shape[static_cast<size_t>(i)];
}

int64_t Tensor::numel() const {
  TURL_CHECK(defined());
  return static_cast<int64_t>(impl_->data.size());
}

float* Tensor::data() {
  TURL_CHECK(defined());
  return impl_->data.data();
}

const float* Tensor::data() const {
  TURL_CHECK(defined());
  return impl_->data.data();
}

float Tensor::at(int64_t i) const {
  TURL_CHECK(defined());
  TURL_CHECK_GE(i, 0);
  TURL_CHECK_LT(i, numel());
  return impl_->data[static_cast<size_t>(i)];
}

float Tensor::at2(int64_t r, int64_t c) const {
  TURL_CHECK_EQ(ndim(), 2);
  TURL_CHECK_GE(r, 0);
  TURL_CHECK_LT(r, dim(0));
  TURL_CHECK_GE(c, 0);
  TURL_CHECK_LT(c, dim(1));
  return impl_->data[static_cast<size_t>(r * dim(1) + c)];
}

float Tensor::item() const {
  TURL_CHECK_EQ(numel(), 1);
  return impl_->data[0];
}

std::vector<float> Tensor::ToVector() const {
  TURL_CHECK(defined());
  return impl_->data;
}

bool Tensor::requires_grad() const {
  return defined() && impl_->requires_grad;
}

Tensor& Tensor::set_requires_grad(bool v) {
  TURL_CHECK(defined());
  impl_->requires_grad = v;
  return *this;
}

float* Tensor::grad() {
  TURL_CHECK(defined());
  if (impl_->grad.empty()) impl_->grad.assign(impl_->data.size(), 0.f);
  return impl_->grad.data();
}

const std::vector<float>& Tensor::grad_vector() const {
  TURL_CHECK(defined());
  return impl_->grad;
}

bool Tensor::has_grad() const { return defined() && !impl_->grad.empty(); }

void Tensor::ZeroGrad() {
  TURL_CHECK(defined());
  impl_->grad.assign(impl_->data.size(), 0.f);
}

void Tensor::AccumulateGrad(const float* delta, int64_t n) {
  TURL_CHECK(defined());
  TURL_CHECK_EQ(n, numel());
  if (impl_->grad.empty()) impl_->grad.assign(impl_->data.size(), 0.f);
  for (int64_t i = 0; i < n; ++i) impl_->grad[static_cast<size_t>(i)] += delta[i];
}

void Tensor::Backward(bool release_graph) {
  TURL_CHECK(defined());
  TURL_CHECK_EQ(numel(), 1);
  TURL_PROFILE_SCOPE("autograd.backward");
  static obs::Counter* backward_calls =
      obs::MetricsRegistry::Get().GetCounter("autograd.backward_calls");
  backward_calls->Inc();

  // Iterative post-order DFS to produce a topological order.
  std::vector<TensorImpl*> topo;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(impl_.get()).second) stack.push_back({impl_.get(), 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      TensorImpl* p = f.node->parents[f.next_parent++].get();
      if (visited.insert(p).second) stack.push_back({p, 0});
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }

  // Seed and run in reverse topological order.
  impl_->grad.assign(impl_->data.size(), 0.f);
  impl_->grad[0] = 1.f;
  // Parallel tape execution is opt-in via TURL_TRAIN_THREADS (pool is null
  // otherwise) and bit-identical to the sequential loop below (see
  // RunTapeTaskGraph). Per-shard tapes (CurrentGradShard) stay sequential:
  // the shards themselves are the parallel axis, and nesting the executor
  // under the shard fan-out would only add scheduling overhead. A call from
  // inside the train pool runs inline for the same reason.
  rt::ThreadPool* pool = TrainPool();
  if (pool != nullptr && !pool->InWorker() && CurrentGradShard() == nullptr &&
      topo.size() > 1) {
    static obs::Counter* parallel_calls = obs::MetricsRegistry::Get().GetCounter(
        "autograd.backward_parallel_calls");
    parallel_calls->Inc();
    RunTapeTaskGraph(topo, pool);
  } else {
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      TensorImpl* node = *it;
      // Empty grad == no consumer fed this node a gradient this pass (a
      // masked-out head, a detached branch): its backward would only add
      // zeros, so it is skipped. Every op closure in ops.cc accumulates into
      // *all* of its parents via GradOf (which allocates on first touch), so
      // a node with a backward_fn and an empty grad can only mean "no
      // contribution", never "forgot to allocate" — pinned by
      // BackwardParallelTest.EveryReachedNodeHasGradAfterBackward.
      if (node->backward_fn && !node->grad.empty()) node->backward_fn();
    }
  }

  if (release_graph) {
    for (TensorImpl* node : topo) {
      node->backward_fn = nullptr;
      node->parents.clear();
    }
  }
}

Tensor Tensor::Detach() const {
  TURL_CHECK(defined());
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;  // Copy: detached view must not alias the graph
                             // node's buffer if the caller later mutates it.
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

Tensor Tensor::Clone() const { return Detach(); }

Tensor Tensor::FromImpl(std::shared_ptr<TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

}  // namespace nn
}  // namespace turl
