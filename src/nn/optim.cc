#include "nn/optim.h"

#include <cmath>

#include "util/logging.h"

namespace turl {
namespace nn {

Adam::Adam(ParamStore* store, AdamConfig config)
    : store_(store), config_(config) {
  TURL_CHECK(store != nullptr);
  m_.reserve(store->params().size());
  v_.reserve(store->params().size());
  for (const auto& [name, t] : store->params()) {
    m_.emplace_back(static_cast<size_t>(t.numel()), 0.f);
    v_.emplace_back(static_cast<size_t>(t.numel()), 0.f);
  }
}

void Adam::Step(float lr_scale) {
  TURL_CHECK_EQ(m_.size(), store_->params().size())
      << "parameters added after optimizer construction";
  ++step_;
  const float lr = config_.lr * lr_scale;
  // Bias corrections in double: float(step_) collapses past 2^24 steps and a
  // single-precision pow of a near-1 base drifts long before that; the
  // per-element math below stays float.
  const float bc1 = static_cast<float>(
      1.0 - std::pow(static_cast<double>(config_.beta1),
                     static_cast<double>(step_)));
  const float bc2 = static_cast<float>(
      1.0 - std::pow(static_cast<double>(config_.beta2),
                     static_cast<double>(step_)));
  size_t pi = 0;
  for (const auto& [name, param] : store_->params()) {
    Tensor t = param;  // Shared impl; cheap copy for non-const access.
    if (!t.has_grad()) {
      ++pi;
      continue;
    }
    float* w = t.data();
    const float* g = t.grad();
    std::vector<float>& m = m_[pi];
    std::vector<float>& v = v_[pi];
    const int64_t n = t.numel();
    for (int64_t i = 0; i < n; ++i) {
      float gi = g[i];
      if (config_.weight_decay > 0.f) gi += config_.weight_decay * w[i];
      m[size_t(i)] = config_.beta1 * m[size_t(i)] + (1.f - config_.beta1) * gi;
      v[size_t(i)] =
          config_.beta2 * v[size_t(i)] + (1.f - config_.beta2) * gi * gi;
      const float mhat = m[size_t(i)] / bc1;
      const float vhat = v[size_t(i)] / bc2;
      w[i] -= lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
    ++pi;
  }
}

Status Adam::SetState(std::vector<std::vector<float>> m,
                      std::vector<std::vector<float>> v, int64_t step) {
  if (step < 0) {
    return Status::FailedPrecondition("negative Adam step count");
  }
  if (m.size() != m_.size() || v.size() != v_.size()) {
    return Status::FailedPrecondition(
        "Adam state has " + std::to_string(m.size()) + "/" +
        std::to_string(v.size()) + " moment buffers, optimizer has " +
        std::to_string(m_.size()));
  }
  for (size_t i = 0; i < m.size(); ++i) {
    if (m[i].size() != m_[i].size() || v[i].size() != v_[i].size()) {
      return Status::FailedPrecondition("Adam moment size mismatch at param " +
                                        std::to_string(i));
    }
  }
  m_ = std::move(m);
  v_ = std::move(v);
  step_ = step;
  return Status::OK();
}

LinearDecaySchedule::LinearDecaySchedule(int64_t total_steps,
                                         float final_fraction)
    : total_steps_(total_steps), final_fraction_(final_fraction) {
  TURL_CHECK_GT(total_steps, 0);
}

float LinearDecaySchedule::Scale(int64_t step) const {
  if (step >= total_steps_) return final_fraction_;
  const float frac = float(step) / float(total_steps_);
  return 1.f + frac * (final_fraction_ - 1.f);
}

}  // namespace nn
}  // namespace turl
