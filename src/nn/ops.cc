#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/profiler.h"
#include "util/logging.h"

namespace turl {
namespace nn {

namespace {

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)

/// Ensures the node's grad buffer exists, returning a raw pointer to it.
float* GradOf(TensorImpl* t) {
  if (t->grad.empty()) t->grad.assign(t->data.size(), 0.f);
  return t->grad.data();
}

/// Builds an op result node: fresh impl with `shape`/`data`, parent edges to
/// the inputs, and `fn(out_impl)` installed as the backward closure. The
/// closure receives the raw output impl pointer (owned by the node itself, so
/// no reference cycle) and must accumulate into the parents' grads.
Tensor MakeNode(Shape shape, std::vector<float> data,
                std::vector<std::shared_ptr<TensorImpl>> parents,
                std::function<void(TensorImpl*)> fn) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  impl->parents = std::move(parents);
  TensorImpl* raw = impl.get();
  impl->backward_fn = [raw, f = std::move(fn)]() { f(raw); };
  return Tensor::FromImpl(std::move(impl));
}

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  TURL_CHECK(a.defined() && b.defined()) << op;
  TURL_CHECK(a.shape() == b.shape())
      << op << ": shape mismatch " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
}

/// Plain single-threaded GEMM kernels. Sizes in this library are small
/// (sequence length tens, hidden width <= a few hundred), so a cache-aware
/// ikj loop ordering is sufficient.
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * size_t(m * n));
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C[m,n] (+)= A[m,k] * B[n,k]^T
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float s = 0.f;
      for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      if (accumulate) {
        crow[j] += s;
      } else {
        crow[j] = s;
      }
    }
  }
}

/// C[k,n] (+)= A[m,k]^T * B[m,n]
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * size_t(k * n));
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.f) continue;
      float* crow = c + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  std::vector<float> out(a.impl()->data);
  const auto& bd = b.impl()->data;
  for (size_t i = 0; i < out.size(); ++i) out[i] += bd[i];
  auto pa = a.impl(), pb = b.impl();
  return MakeNode(a.shape(), std::move(out), {pa, pb}, [pa, pb](TensorImpl* o) {
    const float* g = o->grad.data();
    float* ga = GradOf(pa.get());
    float* gb = GradOf(pb.get());
    for (size_t i = 0; i < o->data.size(); ++i) {
      ga[i] += g[i];
      gb[i] += g[i];
    }
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  std::vector<float> out(a.impl()->data);
  const auto& bd = b.impl()->data;
  for (size_t i = 0; i < out.size(); ++i) out[i] -= bd[i];
  auto pa = a.impl(), pb = b.impl();
  return MakeNode(a.shape(), std::move(out), {pa, pb}, [pa, pb](TensorImpl* o) {
    const float* g = o->grad.data();
    float* ga = GradOf(pa.get());
    float* gb = GradOf(pb.get());
    for (size_t i = 0; i < o->data.size(); ++i) {
      ga[i] += g[i];
      gb[i] -= g[i];
    }
  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  std::vector<float> out(a.impl()->data);
  const auto& bd = b.impl()->data;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= bd[i];
  auto pa = a.impl(), pb = b.impl();
  return MakeNode(a.shape(), std::move(out), {pa, pb}, [pa, pb](TensorImpl* o) {
    const float* g = o->grad.data();
    float* ga = GradOf(pa.get());
    float* gb = GradOf(pb.get());
    const float* ad = pa->data.data();
    const float* bdp = pb->data.data();
    for (size_t i = 0; i < o->data.size(); ++i) {
      ga[i] += g[i] * bdp[i];
      gb[i] += g[i] * ad[i];
    }
  });
}

Tensor Scale(const Tensor& a, float s) {
  TURL_CHECK(a.defined());
  std::vector<float> out(a.impl()->data);
  for (float& x : out) x *= s;
  auto pa = a.impl();
  return MakeNode(a.shape(), std::move(out), {pa}, [pa, s](TensorImpl* o) {
    const float* g = o->grad.data();
    float* ga = GradOf(pa.get());
    for (size_t i = 0; i < o->data.size(); ++i) ga[i] += s * g[i];
  });
}

Tensor AddBias(const Tensor& x, const Tensor& b) {
  TURL_CHECK(x.defined() && b.defined());
  TURL_CHECK_EQ(x.ndim(), 2);
  TURL_CHECK_EQ(b.numel(), x.dim(1));
  const int64_t m = x.dim(0), n = x.dim(1);
  std::vector<float> out(x.impl()->data);
  const float* bd = b.data();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) out[size_t(i * n + j)] += bd[j];
  auto px = x.impl(), pb = b.impl();
  return MakeNode(x.shape(), std::move(out), {px, pb},
                  [px, pb, m, n](TensorImpl* o) {
                    const float* g = o->grad.data();
                    float* gx = GradOf(px.get());
                    float* gb = GradOf(pb.get());
                    for (int64_t i = 0; i < m; ++i) {
                      for (int64_t j = 0; j < n; ++j) {
                        gx[i * n + j] += g[i * n + j];
                        gb[j] += g[i * n + j];
                      }
                    }
                  });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TURL_PROFILE_SCOPE("op.matmul");
  TURL_CHECK(a.defined() && b.defined());
  TURL_CHECK_EQ(a.ndim(), 2);
  TURL_CHECK_EQ(b.ndim(), 2);
  TURL_CHECK_EQ(a.dim(1), b.dim(0))
      << "MatMul: " << ShapeToString(a.shape()) << " x "
      << ShapeToString(b.shape());
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  std::vector<float> out(size_t(m * n));
  GemmNN(a.data(), b.data(), out.data(), m, k, n, /*accumulate=*/false);
  auto pa = a.impl(), pb = b.impl();
  return MakeNode({m, n}, std::move(out), {pa, pb},
                  [pa, pb, m, k, n](TensorImpl* o) {
                    TURL_PROFILE_SCOPE("op.matmul.backward");
                    const float* g = o->grad.data();
                    // dA += dOut * B^T ; dB += A^T * dOut
                    GemmNT(g, pb->data.data(), GradOf(pa.get()), m, n, k,
                           /*accumulate=*/true);
                    GemmTN(pa->data.data(), g, GradOf(pb.get()), m, k, n,
                           /*accumulate=*/true);
                  });
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  TURL_PROFILE_SCOPE("op.matmul_nt");
  TURL_CHECK(a.defined() && b.defined());
  TURL_CHECK_EQ(a.ndim(), 2);
  TURL_CHECK_EQ(b.ndim(), 2);
  TURL_CHECK_EQ(a.dim(1), b.dim(1))
      << "MatMulNT: " << ShapeToString(a.shape()) << " x "
      << ShapeToString(b.shape()) << "^T";
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  std::vector<float> out(size_t(m * n));
  GemmNT(a.data(), b.data(), out.data(), m, k, n, /*accumulate=*/false);
  auto pa = a.impl(), pb = b.impl();
  return MakeNode({m, n}, std::move(out), {pa, pb},
                  [pa, pb, m, k, n](TensorImpl* o) {
                    TURL_PROFILE_SCOPE("op.matmul_nt.backward");
                    const float* g = o->grad.data();
                    // out = A * B^T  =>  dA += g * B ; dB += g^T * A
                    GemmNN(g, pb->data.data(), GradOf(pa.get()), m, n, k,
                           /*accumulate=*/true);
                    GemmTN(g, pa->data.data(), GradOf(pb.get()), m, n, k,
                           /*accumulate=*/true);
                  });
}

Tensor Gelu(const Tensor& x) {
  TURL_PROFILE_SCOPE("op.gelu");
  TURL_CHECK(x.defined());
  const auto& xd = x.impl()->data;
  std::vector<float> out(xd.size());
  for (size_t i = 0; i < xd.size(); ++i) {
    float v = xd[i];
    float inner = kGeluC * (v + 0.044715f * v * v * v);
    out[i] = 0.5f * v * (1.f + std::tanh(inner));
  }
  auto px = x.impl();
  return MakeNode(x.shape(), std::move(out), {px}, [px](TensorImpl* o) {
    const float* g = o->grad.data();
    float* gx = GradOf(px.get());
    const float* xd2 = px->data.data();
    for (size_t i = 0; i < o->data.size(); ++i) {
      float v = xd2[i];
      float inner = kGeluC * (v + 0.044715f * v * v * v);
      float t = std::tanh(inner);
      float dinner = kGeluC * (1.f + 3.f * 0.044715f * v * v);
      float d = 0.5f * (1.f + t) + 0.5f * v * (1.f - t * t) * dinner;
      gx[i] += g[i] * d;
    }
  });
}

Tensor Relu(const Tensor& x) {
  TURL_CHECK(x.defined());
  std::vector<float> out(x.impl()->data);
  for (float& v : out) v = v > 0.f ? v : 0.f;
  auto px = x.impl();
  return MakeNode(x.shape(), std::move(out), {px}, [px](TensorImpl* o) {
    const float* g = o->grad.data();
    float* gx = GradOf(px.get());
    const float* xd = px->data.data();
    for (size_t i = 0; i < o->data.size(); ++i)
      if (xd[i] > 0.f) gx[i] += g[i];
  });
}

Tensor TanhOp(const Tensor& x) {
  TURL_CHECK(x.defined());
  std::vector<float> out(x.impl()->data);
  for (float& v : out) v = std::tanh(v);
  auto px = x.impl();
  return MakeNode(x.shape(), std::move(out), {px}, [px](TensorImpl* o) {
    const float* g = o->grad.data();
    float* gx = GradOf(px.get());
    const float* yd = o->data.data();
    for (size_t i = 0; i < o->data.size(); ++i)
      gx[i] += g[i] * (1.f - yd[i] * yd[i]);
  });
}

Tensor SigmoidOp(const Tensor& x) {
  TURL_CHECK(x.defined());
  std::vector<float> out(x.impl()->data);
  for (float& v : out) v = 1.f / (1.f + std::exp(-v));
  auto px = x.impl();
  return MakeNode(x.shape(), std::move(out), {px}, [px](TensorImpl* o) {
    const float* g = o->grad.data();
    float* gx = GradOf(px.get());
    const float* yd = o->data.data();
    for (size_t i = 0; i < o->data.size(); ++i)
      gx[i] += g[i] * yd[i] * (1.f - yd[i]);
  });
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  TURL_PROFILE_SCOPE("op.layernorm");
  TURL_CHECK(x.defined() && gamma.defined() && beta.defined());
  TURL_CHECK_EQ(x.ndim(), 2);
  const int64_t m = x.dim(0), n = x.dim(1);
  TURL_CHECK_EQ(gamma.numel(), n);
  TURL_CHECK_EQ(beta.numel(), n);

  std::vector<float> out(size_t(m * n));
  // xhat and inv_std are needed by the backward pass; shared via the closure.
  auto xhat = std::make_shared<std::vector<float>>(size_t(m * n));
  auto inv_std = std::make_shared<std::vector<float>>(size_t(m));
  const float* xd = x.data();
  const float* gd = gamma.data();
  const float* bd = beta.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = xd + i * n;
    float mu = 0.f;
    for (int64_t j = 0; j < n; ++j) mu += row[j];
    mu /= float(n);
    float var = 0.f;
    for (int64_t j = 0; j < n; ++j) {
      float d = row[j] - mu;
      var += d * d;
    }
    var /= float(n);
    float is = 1.f / std::sqrt(var + eps);
    (*inv_std)[size_t(i)] = is;
    for (int64_t j = 0; j < n; ++j) {
      float xh = (row[j] - mu) * is;
      (*xhat)[size_t(i * n + j)] = xh;
      out[size_t(i * n + j)] = gd[j] * xh + bd[j];
    }
  }
  auto px = x.impl(), pg = gamma.impl(), pb = beta.impl();
  return MakeNode(
      x.shape(), std::move(out), {px, pg, pb},
      [px, pg, pb, xhat, inv_std, m, n](TensorImpl* o) {
        TURL_PROFILE_SCOPE("op.layernorm.backward");
        const float* g = o->grad.data();
        float* gx = GradOf(px.get());
        float* gg = GradOf(pg.get());
        float* gb = GradOf(pb.get());
        const float* gd2 = pg->data.data();
        for (int64_t i = 0; i < m; ++i) {
          const float* grow = g + i * n;
          const float* xh = xhat->data() + i * n;
          const float is = (*inv_std)[size_t(i)];
          // dxhat = dy * gamma; need mean(dxhat) and mean(dxhat * xhat).
          float mean_dxhat = 0.f, mean_dxhat_xhat = 0.f;
          for (int64_t j = 0; j < n; ++j) {
            float dxh = grow[j] * gd2[j];
            mean_dxhat += dxh;
            mean_dxhat_xhat += dxh * xh[j];
          }
          mean_dxhat /= float(n);
          mean_dxhat_xhat /= float(n);
          for (int64_t j = 0; j < n; ++j) {
            float dxh = grow[j] * gd2[j];
            gx[i * n + j] += is * (dxh - mean_dxhat - xh[j] * mean_dxhat_xhat);
            gg[j] += grow[j] * xh[j];
            gb[j] += grow[j];
          }
        }
      });
}

Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int>& ids) {
  TURL_PROFILE_SCOPE("op.embedding");
  TURL_CHECK(weight.defined());
  TURL_CHECK_EQ(weight.ndim(), 2);
  const int64_t v = weight.dim(0), d = weight.dim(1);
  const int64_t m = static_cast<int64_t>(ids.size());
  std::vector<float> out(size_t(m * d));
  const float* wd = weight.data();
  for (int64_t i = 0; i < m; ++i) {
    TURL_CHECK_GE(ids[size_t(i)], 0);
    TURL_CHECK_LT(ids[size_t(i)], v);
    std::memcpy(out.data() + i * d, wd + int64_t(ids[size_t(i)]) * d,
                sizeof(float) * size_t(d));
  }
  auto pw = weight.impl();
  return MakeNode({m, d}, std::move(out), {pw}, [pw, ids, d](TensorImpl* o) {
    TURL_PROFILE_SCOPE("op.embedding.backward");
    const float* g = o->grad.data();
    float* gw = GradOf(pw.get());
    for (size_t i = 0; i < ids.size(); ++i) {
      float* dst = gw + int64_t(ids[i]) * d;
      const float* src = g + int64_t(i) * d;
      for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  TURL_CHECK(a.defined() && b.defined());
  TURL_CHECK_EQ(a.ndim(), 2);
  TURL_CHECK_EQ(b.ndim(), 2);
  TURL_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t m = a.dim(0), p = a.dim(1), q = b.dim(1);
  std::vector<float> out(size_t(m * (p + q)));
  const float* ad = a.data();
  const float* bd = b.data();
  for (int64_t i = 0; i < m; ++i) {
    std::memcpy(out.data() + i * (p + q), ad + i * p, sizeof(float) * size_t(p));
    std::memcpy(out.data() + i * (p + q) + p, bd + i * q,
                sizeof(float) * size_t(q));
  }
  auto pa = a.impl(), pb = b.impl();
  return MakeNode({m, p + q}, std::move(out), {pa, pb},
                  [pa, pb, m, p, q](TensorImpl* o) {
                    const float* g = o->grad.data();
                    float* ga = GradOf(pa.get());
                    float* gb = GradOf(pb.get());
                    for (int64_t i = 0; i < m; ++i) {
                      for (int64_t j = 0; j < p; ++j)
                        ga[i * p + j] += g[i * (p + q) + j];
                      for (int64_t j = 0; j < q; ++j)
                        gb[i * q + j] += g[i * (p + q) + p + j];
                    }
                  });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  TURL_CHECK(!parts.empty());
  const int64_t n = parts[0].dim(1);
  int64_t m = 0;
  for (const auto& t : parts) {
    TURL_CHECK_EQ(t.ndim(), 2);
    TURL_CHECK_EQ(t.dim(1), n);
    m += t.dim(0);
  }
  std::vector<float> out(size_t(m * n));
  std::vector<std::shared_ptr<TensorImpl>> parents;
  parents.reserve(parts.size());
  int64_t row = 0;
  for (const auto& t : parts) {
    std::memcpy(out.data() + row * n, t.data(),
                sizeof(float) * size_t(t.numel()));
    row += t.dim(0);
    parents.push_back(t.impl());
  }
  auto parents_copy = parents;
  return MakeNode({m, n}, std::move(out), std::move(parents),
                  [parents_copy, n](TensorImpl* o) {
                    const float* g = o->grad.data();
                    int64_t r = 0;
                    for (const auto& p : parents_copy) {
                      float* gp = GradOf(p.get());
                      const int64_t rows = p->shape[0];
                      for (int64_t i = 0; i < rows * n; ++i)
                        gp[i] += g[r * n + i];
                      r += rows;
                    }
                  });
}

Tensor SelectRows(const Tensor& x, const std::vector<int>& rows) {
  TURL_CHECK(x.defined());
  TURL_CHECK_EQ(x.ndim(), 2);
  const int64_t m = x.dim(0), d = x.dim(1);
  const int64_t r = static_cast<int64_t>(rows.size());
  std::vector<float> out(size_t(r * d));
  const float* xd = x.data();
  for (int64_t i = 0; i < r; ++i) {
    TURL_CHECK_GE(rows[size_t(i)], 0);
    TURL_CHECK_LT(rows[size_t(i)], m);
    std::memcpy(out.data() + i * d, xd + int64_t(rows[size_t(i)]) * d,
                sizeof(float) * size_t(d));
  }
  auto px = x.impl();
  return MakeNode({r, d}, std::move(out), {px}, [px, rows, d](TensorImpl* o) {
    const float* g = o->grad.data();
    float* gx = GradOf(px.get());
    for (size_t i = 0; i < rows.size(); ++i) {
      float* dst = gx + int64_t(rows[i]) * d;
      const float* src = g + int64_t(i) * d;
      for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  });
}

Tensor RowsMean(const Tensor& x, const std::vector<int>& rows) {
  TURL_CHECK(x.defined());
  TURL_CHECK_EQ(x.ndim(), 2);
  TURL_CHECK(!rows.empty());
  const int64_t m = x.dim(0), d = x.dim(1);
  std::vector<float> out(size_t(d), 0.f);
  const float* xd = x.data();
  for (int row : rows) {
    TURL_CHECK_GE(row, 0);
    TURL_CHECK_LT(row, m);
    const float* src = xd + int64_t(row) * d;
    for (int64_t j = 0; j < d; ++j) out[size_t(j)] += src[j];
  }
  const float inv = 1.f / float(rows.size());
  for (float& v : out) v *= inv;
  auto px = x.impl();
  return MakeNode({1, d}, std::move(out), {px},
                  [px, rows, d, inv](TensorImpl* o) {
                    const float* g = o->grad.data();
                    float* gx = GradOf(px.get());
                    for (int row : rows) {
                      float* dst = gx + int64_t(row) * d;
                      for (int64_t j = 0; j < d; ++j) dst[j] += inv * g[j];
                    }
                  });
}

Tensor BagMean(const Tensor& weight,
               const std::vector<std::vector<int>>& bags) {
  TURL_PROFILE_SCOPE("op.bag_mean");
  TURL_CHECK(weight.defined());
  TURL_CHECK_EQ(weight.ndim(), 2);
  const int64_t v = weight.dim(0), d = weight.dim(1);
  const int64_t m = static_cast<int64_t>(bags.size());
  std::vector<float> out(size_t(m * d), 0.f);
  const float* wd = weight.data();
  for (int64_t i = 0; i < m; ++i) {
    const auto& bag = bags[size_t(i)];
    if (bag.empty()) continue;
    float* dst = out.data() + i * d;
    for (int id : bag) {
      TURL_CHECK_GE(id, 0);
      TURL_CHECK_LT(id, v);
      const float* src = wd + int64_t(id) * d;
      for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
    }
    const float inv = 1.f / float(bag.size());
    for (int64_t j = 0; j < d; ++j) dst[j] *= inv;
  }
  auto pw = weight.impl();
  return MakeNode({m, d}, std::move(out), {pw}, [pw, bags, d](TensorImpl* o) {
    TURL_PROFILE_SCOPE("op.bag_mean.backward");
    const float* g = o->grad.data();
    float* gw = GradOf(pw.get());
    for (size_t i = 0; i < bags.size(); ++i) {
      const auto& bag = bags[i];
      if (bag.empty()) continue;
      const float inv = 1.f / float(bag.size());
      const float* src = g + int64_t(i) * d;
      for (int id : bag) {
        float* dst = gw + int64_t(id) * d;
        for (int64_t j = 0; j < d; ++j) dst[j] += inv * src[j];
      }
    }
  });
}

Tensor SoftmaxRows(const Tensor& x) {
  TURL_PROFILE_SCOPE("op.softmax");
  TURL_CHECK(x.defined());
  TURL_CHECK_EQ(x.ndim(), 2);
  const int64_t m = x.dim(0), n = x.dim(1);
  std::vector<float> out(size_t(m * n));
  const float* xd = x.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* row = xd + i * n;
    float mx = row[0];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float sum = 0.f;
    for (int64_t j = 0; j < n; ++j) {
      float e = std::exp(row[j] - mx);
      out[size_t(i * n + j)] = e;
      sum += e;
    }
    for (int64_t j = 0; j < n; ++j) out[size_t(i * n + j)] /= sum;
  }
  auto px = x.impl();
  return MakeNode(x.shape(), std::move(out), {px}, [px, m, n](TensorImpl* o) {
    TURL_PROFILE_SCOPE("op.softmax.backward");
    const float* g = o->grad.data();
    const float* y = o->data.data();
    float* gx = GradOf(px.get());
    for (int64_t i = 0; i < m; ++i) {
      const float* yr = y + i * n;
      const float* gr = g + i * n;
      float dot = 0.f;
      for (int64_t j = 0; j < n; ++j) dot += yr[j] * gr[j];
      for (int64_t j = 0; j < n; ++j)
        gx[i * n + j] += yr[j] * (gr[j] - dot);
    }
  });
}

Tensor MultiHeadAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                          const std::vector<float>& additive_mask,
                          int num_heads) {
  TURL_PROFILE_SCOPE("op.attention");
  TURL_CHECK(q.defined() && k.defined() && v.defined());
  TURL_CHECK_EQ(q.ndim(), 2);
  TURL_CHECK(q.shape() == k.shape() && q.shape() == v.shape());
  const int64_t n = q.dim(0), d = q.dim(1);
  TURL_CHECK_GT(num_heads, 0);
  TURL_CHECK_EQ(d % num_heads, 0);
  TURL_CHECK_EQ(static_cast<int64_t>(additive_mask.size()), n * n);
  const int64_t dh = d / num_heads;
  const float scale = 1.f / std::sqrt(float(dh));

  // probs[h] holds the n x n post-softmax attention matrix of head h,
  // retained for the backward pass.
  auto probs = std::make_shared<std::vector<std::vector<float>>>(
      size_t(num_heads), std::vector<float>(size_t(n * n)));
  std::vector<float> out(size_t(n * d), 0.f);
  const float* qd = q.data();
  const float* kd = k.data();
  const float* vd = v.data();

  for (int h = 0; h < num_heads; ++h) {
    std::vector<float>& p = (*probs)[size_t(h)];
    const int64_t off = int64_t(h) * dh;
    for (int64_t i = 0; i < n; ++i) {
      // Scores row i over all j, masked, then softmax.
      float mx = -1e30f;
      for (int64_t j = 0; j < n; ++j) {
        float s = 0.f;
        const float* qi = qd + i * d + off;
        const float* kj = kd + j * d + off;
        for (int64_t t = 0; t < dh; ++t) s += qi[t] * kj[t];
        s = s * scale + additive_mask[size_t(i * n + j)];
        p[size_t(i * n + j)] = s;
        mx = std::max(mx, s);
      }
      float sum = 0.f;
      for (int64_t j = 0; j < n; ++j) {
        float e = std::exp(p[size_t(i * n + j)] - mx);
        p[size_t(i * n + j)] = e;
        sum += e;
      }
      const float inv = 1.f / sum;
      float* orow = out.data() + i * d + off;
      for (int64_t j = 0; j < n; ++j) {
        const float pij = p[size_t(i * n + j)] * inv;
        p[size_t(i * n + j)] = pij;
        const float* vj = vd + j * d + off;
        for (int64_t t = 0; t < dh; ++t) orow[t] += pij * vj[t];
      }
    }
  }

  auto pq = q.impl(), pk = k.impl(), pv = v.impl();
  return MakeNode(
      {n, d}, std::move(out), {pq, pk, pv},
      [pq, pk, pv, probs, n, d, dh, num_heads, scale](TensorImpl* o) {
        TURL_PROFILE_SCOPE("op.attention.backward");
        const float* g = o->grad.data();
        float* gq = GradOf(pq.get());
        float* gk = GradOf(pk.get());
        float* gv = GradOf(pv.get());
        const float* qd2 = pq->data.data();
        const float* kd2 = pk->data.data();
        const float* vd2 = pv->data.data();
        std::vector<float> dp(static_cast<size_t>(n));  // dP for one row.
        for (int h = 0; h < num_heads; ++h) {
          const std::vector<float>& p = (*probs)[size_t(h)];
          const int64_t off = int64_t(h) * dh;
          for (int64_t i = 0; i < n; ++i) {
            const float* go = g + i * d + off;
            // dV_j += P_ij * dO_i ; dP_ij = dO_i . V_j
            float dot = 0.f;
            for (int64_t j = 0; j < n; ++j) {
              const float pij = p[size_t(i * n + j)];
              const float* vj = vd2 + j * d + off;
              float* gvj = gv + j * d + off;
              float dpij = 0.f;
              for (int64_t t = 0; t < dh; ++t) {
                gvj[t] += pij * go[t];
                dpij += go[t] * vj[t];
              }
              dp[size_t(j)] = dpij;
              dot += pij * dpij;
            }
            // dS_ij = P_ij (dP_ij - sum_j P_ij dP_ij); then Q/K grads.
            const float* qi = qd2 + i * d + off;
            float* gqi = gq + i * d + off;
            for (int64_t j = 0; j < n; ++j) {
              const float pij = p[size_t(i * n + j)];
              if (pij == 0.f) continue;
              const float ds = pij * (dp[size_t(j)] - dot) * scale;
              const float* kj = kd2 + j * d + off;
              float* gkj = gk + j * d + off;
              for (int64_t t = 0; t < dh; ++t) {
                gqi[t] += ds * kj[t];
                gkj[t] += ds * qi[t];
              }
            }
          }
        }
      });
}

Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng) {
  TURL_PROFILE_SCOPE("op.dropout");
  TURL_CHECK(x.defined());
  if (!training || p <= 0.f) return x;
  TURL_CHECK_LT(p, 1.f);
  TURL_CHECK(rng != nullptr);
  const float keep_scale = 1.f / (1.f - p);
  auto mask = std::make_shared<std::vector<float>>(x.impl()->data.size());
  std::vector<float> out(x.impl()->data);
  for (size_t i = 0; i < out.size(); ++i) {
    const float m = rng->Bernoulli(p) ? 0.f : keep_scale;
    (*mask)[i] = m;
    out[i] *= m;
  }
  auto px = x.impl();
  return MakeNode(x.shape(), std::move(out), {px}, [px, mask](TensorImpl* o) {
    const float* g = o->grad.data();
    float* gx = GradOf(px.get());
    for (size_t i = 0; i < o->data.size(); ++i) gx[i] += g[i] * (*mask)[i];
  });
}

Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int>& targets, int ignore_index) {
  TURL_PROFILE_SCOPE("op.softmax_xent");
  TURL_CHECK(logits.defined());
  TURL_CHECK_EQ(logits.ndim(), 2);
  const int64_t m = logits.dim(0), c = logits.dim(1);
  TURL_CHECK_EQ(static_cast<int64_t>(targets.size()), m);

  // softmax probabilities retained for the backward pass.
  auto probs = std::make_shared<std::vector<float>>(size_t(m * c));
  const float* ld = logits.data();
  double loss = 0.0;
  int64_t valid = 0;
  for (int64_t i = 0; i < m; ++i) {
    const float* row = ld + i * c;
    float mx = row[0];
    for (int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    float sum = 0.f;
    for (int64_t j = 0; j < c; ++j) {
      float e = std::exp(row[j] - mx);
      (*probs)[size_t(i * c + j)] = e;
      sum += e;
    }
    for (int64_t j = 0; j < c; ++j) (*probs)[size_t(i * c + j)] /= sum;
    const int t = targets[size_t(i)];
    if (t == ignore_index) continue;
    TURL_CHECK_GE(t, 0);
    TURL_CHECK_LT(t, c);
    loss -= std::log(std::max((*probs)[size_t(i * c + t)], 1e-12f));
    ++valid;
  }
  const float inv = valid > 0 ? 1.f / float(valid) : 0.f;
  auto pl = logits.impl();
  return MakeNode(
      {1}, {float(loss) * inv}, {pl},
      [pl, probs, targets, ignore_index, m, c, inv](TensorImpl* o) {
        TURL_PROFILE_SCOPE("op.softmax_xent.backward");
        const float go = o->grad[0];
        float* gl = GradOf(pl.get());
        for (int64_t i = 0; i < m; ++i) {
          const int t = targets[size_t(i)];
          if (t == ignore_index) continue;
          for (int64_t j = 0; j < c; ++j) {
            float d = (*probs)[size_t(i * c + j)];
            if (j == t) d -= 1.f;
            gl[i * c + j] += go * inv * d;
          }
        }
      });
}

Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& targets) {
  TURL_PROFILE_SCOPE("op.bce");
  TURL_CHECK(logits.defined());
  TURL_CHECK_EQ(logits.numel(), static_cast<int64_t>(targets.size()));
  const int64_t n = logits.numel();
  TURL_CHECK_GT(n, 0);
  const float* z = logits.data();
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float zi = z[size_t(i)];
    const float ti = targets[size_t(i)];
    // Stable: max(z,0) - z*t + log(1 + exp(-|z|)).
    loss += std::max(zi, 0.f) - zi * ti + std::log1p(std::exp(-std::abs(zi)));
  }
  const float inv = 1.f / float(n);
  auto pl = logits.impl();
  return MakeNode({1}, {float(loss) * inv}, {pl},
                  [pl, targets, n, inv](TensorImpl* o) {
                    const float go = o->grad[0];
                    float* gl = GradOf(pl.get());
                    const float* z2 = pl->data.data();
                    for (int64_t i = 0; i < n; ++i) {
                      const float s = 1.f / (1.f + std::exp(-z2[size_t(i)]));
                      gl[i] += go * inv * (s - targets[size_t(i)]);
                    }
                  });
}

Tensor SumAll(const Tensor& x) {
  TURL_CHECK(x.defined());
  double s = 0.0;
  for (float v : x.impl()->data) s += v;
  auto px = x.impl();
  return MakeNode({1}, {float(s)}, {px}, [px](TensorImpl* o) {
    const float go = o->grad[0];
    float* gx = GradOf(px.get());
    for (size_t i = 0; i < px->data.size(); ++i) gx[i] += go;
  });
}

Tensor MeanAll(const Tensor& x) {
  TURL_CHECK(x.defined());
  TURL_CHECK_GT(x.numel(), 0);
  return Scale(SumAll(x), 1.f / float(x.numel()));
}

}  // namespace nn
}  // namespace turl
