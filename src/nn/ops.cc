#include "nn/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/kernels/kernels.h"
#include "nn/train_parallel.h"
#include "obs/profiler.h"
#include "util/logging.h"

namespace turl {
namespace nn {

namespace {

/// Ensures the node's grad buffer exists, returning a raw pointer to it.
/// Pooled nodes lease their gradient from the kernels arena so both buffers
/// recycle together when the node dies.
///
/// Thread-safety contract for every backward closure below (audited with
/// the task-graph executor in Tensor::Backward): a closure may run on any
/// thread, but all the state it touches is either private to its tape
/// (output grad/data, captured scratch) or a parent grad obtained through
/// this function — and the executor chains every closure that touches the
/// same parent, so those writes are ordered and race-free by construction.
/// Closures must not touch other global mutable state; none do.
///
/// With a GradShard installed (data-parallel sharding, see
/// nn/train_parallel.h), leaf-parameter accumulation is redirected into the
/// shard's private buffer; interior tape nodes miss the shard index and keep
/// their own grads.
float* GradOf(TensorImpl* t) {
  if (GradShard* shard = CurrentGradShard()) {
    if (float* redirected = shard->Redirect(t)) return redirected;
  }
  if (t->grad.empty()) {
    if (t->pooled) {
      t->grad = kernels::LeasePooled(t->data.size(), /*zero=*/true);
    } else {
      t->grad.assign(t->data.size(), 0.f);
    }
  }
  return t->grad.data();
}

/// Builds an op result node: fresh impl with `shape`/`data`, parent edges to
/// the inputs, and `fn(out_impl)` installed as the backward closure. The
/// closure receives the raw output impl pointer (owned by the node itself, so
/// no reference cycle) and must accumulate into the parents' grads. Nodes
/// built inside a kernels::ArenaScope are marked pooled: their buffers return
/// to the per-thread arena when the node is destroyed.
Tensor MakeNode(Shape shape, std::vector<float> data,
                std::vector<std::shared_ptr<TensorImpl>> parents,
                std::function<void(TensorImpl*)> fn) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  impl->parents = std::move(parents);
  impl->pooled = kernels::ArenaActive();
  TensorImpl* raw = impl.get();
  impl->backward_fn = [raw, f = std::move(fn)]() { f(raw); };
  return Tensor::FromImpl(std::move(impl));
}

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  TURL_CHECK(a.defined() && b.defined()) << op;
  TURL_CHECK(a.shape() == b.shape())
      << op << ": shape mismatch " << ShapeToString(a.shape()) << " vs "
      << ShapeToString(b.shape());
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  const float* ad = a.data();
  const float* bd = b.data();
  const size_t sz = a.impl()->data.size();
  std::vector<float> out = kernels::AllocBuffer(sz, /*zero=*/false);
  for (size_t i = 0; i < sz; ++i) out[i] = ad[i] + bd[i];
  auto pa = a.impl(), pb = b.impl();
  return MakeNode(a.shape(), std::move(out), {pa, pb}, [pa, pb](TensorImpl* o) {
    const float* g = o->grad.data();
    float* ga = GradOf(pa.get());
    float* gb = GradOf(pb.get());
    for (size_t i = 0; i < o->data.size(); ++i) {
      ga[i] += g[i];
      gb[i] += g[i];
    }
  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  const float* ad = a.data();
  const float* bd = b.data();
  const size_t sz = a.impl()->data.size();
  std::vector<float> out = kernels::AllocBuffer(sz, /*zero=*/false);
  for (size_t i = 0; i < sz; ++i) out[i] = ad[i] - bd[i];
  auto pa = a.impl(), pb = b.impl();
  return MakeNode(a.shape(), std::move(out), {pa, pb}, [pa, pb](TensorImpl* o) {
    const float* g = o->grad.data();
    float* ga = GradOf(pa.get());
    float* gb = GradOf(pb.get());
    for (size_t i = 0; i < o->data.size(); ++i) {
      ga[i] += g[i];
      gb[i] -= g[i];
    }
  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  const float* ad = a.data();
  const float* bd = b.data();
  const size_t sz = a.impl()->data.size();
  std::vector<float> out = kernels::AllocBuffer(sz, /*zero=*/false);
  for (size_t i = 0; i < sz; ++i) out[i] = ad[i] * bd[i];
  auto pa = a.impl(), pb = b.impl();
  return MakeNode(a.shape(), std::move(out), {pa, pb}, [pa, pb](TensorImpl* o) {
    const float* g = o->grad.data();
    float* ga = GradOf(pa.get());
    float* gb = GradOf(pb.get());
    const float* ad2 = pa->data.data();
    const float* bd2 = pb->data.data();
    for (size_t i = 0; i < o->data.size(); ++i) {
      ga[i] += g[i] * bd2[i];
      gb[i] += g[i] * ad2[i];
    }
  });
}

Tensor Scale(const Tensor& a, float s) {
  TURL_CHECK(a.defined());
  const float* ad = a.data();
  const size_t sz = a.impl()->data.size();
  std::vector<float> out = kernels::AllocBuffer(sz, /*zero=*/false);
  for (size_t i = 0; i < sz; ++i) out[i] = ad[i] * s;
  auto pa = a.impl();
  return MakeNode(a.shape(), std::move(out), {pa}, [pa, s](TensorImpl* o) {
    const float* g = o->grad.data();
    float* ga = GradOf(pa.get());
    for (size_t i = 0; i < o->data.size(); ++i) ga[i] += s * g[i];
  });
}

Tensor AddBias(const Tensor& x, const Tensor& b) {
  TURL_CHECK(x.defined() && b.defined());
  TURL_CHECK_EQ(x.ndim(), 2);
  TURL_CHECK_EQ(b.numel(), x.dim(1));
  const int64_t m = x.dim(0), n = x.dim(1);
  const float* xd = x.data();
  const float* bd = b.data();
  std::vector<float> out = kernels::AllocBuffer(size_t(m * n), /*zero=*/false);
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j)
      out[size_t(i * n + j)] = xd[i * n + j] + bd[j];
  auto px = x.impl(), pb = b.impl();
  return MakeNode(x.shape(), std::move(out), {px, pb},
                  [px, pb, m, n](TensorImpl* o) {
                    const float* g = o->grad.data();
                    float* gx = GradOf(px.get());
                    float* gb = GradOf(pb.get());
                    for (int64_t i = 0; i < m; ++i) {
                      for (int64_t j = 0; j < n; ++j) {
                        gx[i * n + j] += g[i * n + j];
                        gb[j] += g[i * n + j];
                      }
                    }
                  });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TURL_PROFILE_SCOPE("op.matmul");
  TURL_CHECK(a.defined() && b.defined());
  TURL_CHECK_EQ(a.ndim(), 2);
  TURL_CHECK_EQ(b.ndim(), 2);
  TURL_CHECK_EQ(a.dim(1), b.dim(0))
      << "MatMul: " << ShapeToString(a.shape()) << " x "
      << ShapeToString(b.shape());
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  std::vector<float> out = kernels::AllocBuffer(size_t(m * n), /*zero=*/false);
  kernels::GemmNN(m, n, k, a.data(), k, b.data(), n, out.data(), n,
                  /*accumulate=*/false);
  auto pa = a.impl(), pb = b.impl();
  return MakeNode({m, n}, std::move(out), {pa, pb},
                  [pa, pb, m, k, n](TensorImpl* o) {
                    TURL_PROFILE_SCOPE("op.matmul.backward");
                    const float* g = o->grad.data();
                    // dA += dOut * B^T ; dB += A^T * dOut
                    kernels::GemmNT(m, k, n, g, n, pb->data.data(), n,
                                    GradOf(pa.get()), k, /*accumulate=*/true);
                    kernels::GemmTN(k, n, m, pa->data.data(), k, g, n,
                                    GradOf(pb.get()), n, /*accumulate=*/true);
                  });
}

Tensor MatMulNT(const Tensor& a, const Tensor& b) {
  TURL_PROFILE_SCOPE("op.matmul_nt");
  TURL_CHECK(a.defined() && b.defined());
  TURL_CHECK_EQ(a.ndim(), 2);
  TURL_CHECK_EQ(b.ndim(), 2);
  TURL_CHECK_EQ(a.dim(1), b.dim(1))
      << "MatMulNT: " << ShapeToString(a.shape()) << " x "
      << ShapeToString(b.shape()) << "^T";
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  std::vector<float> out = kernels::AllocBuffer(size_t(m * n), /*zero=*/false);
  kernels::GemmNT(m, n, k, a.data(), k, b.data(), k, out.data(), n,
                  /*accumulate=*/false);
  auto pa = a.impl(), pb = b.impl();
  return MakeNode({m, n}, std::move(out), {pa, pb},
                  [pa, pb, m, k, n](TensorImpl* o) {
                    TURL_PROFILE_SCOPE("op.matmul_nt.backward");
                    const float* g = o->grad.data();
                    // out = A * B^T  =>  dA += g * B ; dB += g^T * A
                    kernels::GemmNN(m, k, n, g, n, pb->data.data(), k,
                                    GradOf(pa.get()), k, /*accumulate=*/true);
                    kernels::GemmTN(n, k, m, g, n, pa->data.data(), k,
                                    GradOf(pb.get()), k, /*accumulate=*/true);
                  });
}

namespace {

/// Shared implementation for the elementwise activation ops: fused forward
/// kernel, fused backward kernel.
Tensor ActivationOp(const Tensor& x, kernels::Act act) {
  TURL_CHECK(x.defined());
  const size_t sz = x.impl()->data.size();
  std::vector<float> out = kernels::AllocBuffer(sz, /*zero=*/false);
  kernels::ActivationForward(act, x.data(), out.data(),
                             static_cast<int64_t>(sz));
  auto px = x.impl();
  return MakeNode(x.shape(), std::move(out), {px}, [px, act](TensorImpl* o) {
    kernels::ActivationBackward(act, px->data.data(), o->data.data(),
                                o->grad.data(), GradOf(px.get()),
                                static_cast<int64_t>(o->data.size()));
  });
}

}  // namespace

Tensor Gelu(const Tensor& x) {
  TURL_PROFILE_SCOPE("op.gelu");
  return ActivationOp(x, kernels::Act::kGelu);
}

Tensor Relu(const Tensor& x) { return ActivationOp(x, kernels::Act::kRelu); }

Tensor TanhOp(const Tensor& x) { return ActivationOp(x, kernels::Act::kTanh); }

Tensor SigmoidOp(const Tensor& x) {
  return ActivationOp(x, kernels::Act::kSigmoid);
}

Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps) {
  TURL_PROFILE_SCOPE("op.layernorm");
  TURL_CHECK(x.defined() && gamma.defined() && beta.defined());
  TURL_CHECK_EQ(x.ndim(), 2);
  const int64_t m = x.dim(0), n = x.dim(1);
  TURL_CHECK_EQ(gamma.numel(), n);
  TURL_CHECK_EQ(beta.numel(), n);

  std::vector<float> out = kernels::AllocBuffer(size_t(m * n), /*zero=*/false);
  // xhat and inv_std are needed by the backward pass; shared via the closure
  // and leased from the arena so they recycle with the tape.
  auto xhat =
      std::make_shared<kernels::PooledBuffer>(size_t(m * n), /*zero=*/false);
  auto inv_std =
      std::make_shared<kernels::PooledBuffer>(size_t(m), /*zero=*/false);
  kernels::LayerNormForward(x.data(), gamma.data(), beta.data(), eps,
                            out.data(), xhat->data(), inv_std->data(), m, n);
  auto px = x.impl(), pg = gamma.impl(), pb = beta.impl();
  return MakeNode(x.shape(), std::move(out), {px, pg, pb},
                  [px, pg, pb, xhat, inv_std, m, n](TensorImpl* o) {
                    TURL_PROFILE_SCOPE("op.layernorm.backward");
                    kernels::LayerNormBackward(
                        o->grad.data(), pg->data.data(), xhat->data(),
                        inv_std->data(), GradOf(px.get()), GradOf(pg.get()),
                        GradOf(pb.get()), m, n);
                  });
}

Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int>& ids) {
  TURL_PROFILE_SCOPE("op.embedding");
  TURL_CHECK(weight.defined());
  TURL_CHECK_EQ(weight.ndim(), 2);
  const int64_t v = weight.dim(0), d = weight.dim(1);
  const int64_t m = static_cast<int64_t>(ids.size());
  std::vector<float> out = kernels::AllocBuffer(size_t(m * d), /*zero=*/false);
  const float* wd = weight.data();
  for (int64_t i = 0; i < m; ++i) {
    TURL_CHECK_GE(ids[size_t(i)], 0);
    TURL_CHECK_LT(ids[size_t(i)], v);
    std::memcpy(out.data() + i * d, wd + int64_t(ids[size_t(i)]) * d,
                sizeof(float) * size_t(d));
  }
  auto pw = weight.impl();
  return MakeNode({m, d}, std::move(out), {pw}, [pw, ids, d](TensorImpl* o) {
    TURL_PROFILE_SCOPE("op.embedding.backward");
    const float* g = o->grad.data();
    float* gw = GradOf(pw.get());
    for (size_t i = 0; i < ids.size(); ++i) {
      float* dst = gw + int64_t(ids[i]) * d;
      const float* src = g + int64_t(i) * d;
      for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  TURL_CHECK(a.defined() && b.defined());
  TURL_CHECK_EQ(a.ndim(), 2);
  TURL_CHECK_EQ(b.ndim(), 2);
  TURL_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t m = a.dim(0), p = a.dim(1), q = b.dim(1);
  std::vector<float> out =
      kernels::AllocBuffer(size_t(m * (p + q)), /*zero=*/false);
  const float* ad = a.data();
  const float* bd = b.data();
  for (int64_t i = 0; i < m; ++i) {
    std::memcpy(out.data() + i * (p + q), ad + i * p, sizeof(float) * size_t(p));
    std::memcpy(out.data() + i * (p + q) + p, bd + i * q,
                sizeof(float) * size_t(q));
  }
  auto pa = a.impl(), pb = b.impl();
  return MakeNode({m, p + q}, std::move(out), {pa, pb},
                  [pa, pb, m, p, q](TensorImpl* o) {
                    const float* g = o->grad.data();
                    float* ga = GradOf(pa.get());
                    float* gb = GradOf(pb.get());
                    for (int64_t i = 0; i < m; ++i) {
                      for (int64_t j = 0; j < p; ++j)
                        ga[i * p + j] += g[i * (p + q) + j];
                      for (int64_t j = 0; j < q; ++j)
                        gb[i * q + j] += g[i * (p + q) + p + j];
                    }
                  });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  TURL_CHECK(!parts.empty());
  const int64_t n = parts[0].dim(1);
  int64_t m = 0;
  for (const auto& t : parts) {
    TURL_CHECK_EQ(t.ndim(), 2);
    TURL_CHECK_EQ(t.dim(1), n);
    m += t.dim(0);
  }
  std::vector<float> out = kernels::AllocBuffer(size_t(m * n), /*zero=*/false);
  std::vector<std::shared_ptr<TensorImpl>> parents;
  parents.reserve(parts.size());
  int64_t row = 0;
  for (const auto& t : parts) {
    std::memcpy(out.data() + row * n, t.data(),
                sizeof(float) * size_t(t.numel()));
    row += t.dim(0);
    parents.push_back(t.impl());
  }
  auto parents_copy = parents;
  return MakeNode({m, n}, std::move(out), std::move(parents),
                  [parents_copy, n](TensorImpl* o) {
                    const float* g = o->grad.data();
                    int64_t r = 0;
                    for (const auto& p : parents_copy) {
                      float* gp = GradOf(p.get());
                      const int64_t rows = p->shape[0];
                      for (int64_t i = 0; i < rows * n; ++i)
                        gp[i] += g[r * n + i];
                      r += rows;
                    }
                  });
}

Tensor SelectRows(const Tensor& x, const std::vector<int>& rows) {
  TURL_CHECK(x.defined());
  TURL_CHECK_EQ(x.ndim(), 2);
  const int64_t m = x.dim(0), d = x.dim(1);
  const int64_t r = static_cast<int64_t>(rows.size());
  std::vector<float> out = kernels::AllocBuffer(size_t(r * d), /*zero=*/false);
  const float* xd = x.data();
  for (int64_t i = 0; i < r; ++i) {
    TURL_CHECK_GE(rows[size_t(i)], 0);
    TURL_CHECK_LT(rows[size_t(i)], m);
    std::memcpy(out.data() + i * d, xd + int64_t(rows[size_t(i)]) * d,
                sizeof(float) * size_t(d));
  }
  auto px = x.impl();
  return MakeNode({r, d}, std::move(out), {px}, [px, rows, d](TensorImpl* o) {
    const float* g = o->grad.data();
    float* gx = GradOf(px.get());
    for (size_t i = 0; i < rows.size(); ++i) {
      float* dst = gx + int64_t(rows[i]) * d;
      const float* src = g + int64_t(i) * d;
      for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  });
}

Tensor RowsMean(const Tensor& x, const std::vector<int>& rows) {
  TURL_CHECK(x.defined());
  TURL_CHECK_EQ(x.ndim(), 2);
  TURL_CHECK(!rows.empty());
  const int64_t m = x.dim(0), d = x.dim(1);
  std::vector<float> out = kernels::AllocBuffer(size_t(d), /*zero=*/true);
  const float* xd = x.data();
  for (int row : rows) {
    TURL_CHECK_GE(row, 0);
    TURL_CHECK_LT(row, m);
    const float* src = xd + int64_t(row) * d;
    for (int64_t j = 0; j < d; ++j) out[size_t(j)] += src[j];
  }
  const float inv = 1.f / float(rows.size());
  for (float& v : out) v *= inv;
  auto px = x.impl();
  return MakeNode({1, d}, std::move(out), {px},
                  [px, rows, d, inv](TensorImpl* o) {
                    const float* g = o->grad.data();
                    float* gx = GradOf(px.get());
                    for (int row : rows) {
                      float* dst = gx + int64_t(row) * d;
                      for (int64_t j = 0; j < d; ++j) dst[j] += inv * g[j];
                    }
                  });
}

Tensor BagMean(const Tensor& weight,
               const std::vector<std::vector<int>>& bags) {
  TURL_PROFILE_SCOPE("op.bag_mean");
  TURL_CHECK(weight.defined());
  TURL_CHECK_EQ(weight.ndim(), 2);
  const int64_t v = weight.dim(0), d = weight.dim(1);
  const int64_t m = static_cast<int64_t>(bags.size());
  std::vector<float> out = kernels::AllocBuffer(size_t(m * d), /*zero=*/true);
  const float* wd = weight.data();
  for (int64_t i = 0; i < m; ++i) {
    const auto& bag = bags[size_t(i)];
    if (bag.empty()) continue;
    float* dst = out.data() + i * d;
    for (int id : bag) {
      TURL_CHECK_GE(id, 0);
      TURL_CHECK_LT(id, v);
      const float* src = wd + int64_t(id) * d;
      for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
    }
    const float inv = 1.f / float(bag.size());
    for (int64_t j = 0; j < d; ++j) dst[j] *= inv;
  }
  auto pw = weight.impl();
  return MakeNode({m, d}, std::move(out), {pw}, [pw, bags, d](TensorImpl* o) {
    TURL_PROFILE_SCOPE("op.bag_mean.backward");
    const float* g = o->grad.data();
    float* gw = GradOf(pw.get());
    for (size_t i = 0; i < bags.size(); ++i) {
      const auto& bag = bags[i];
      if (bag.empty()) continue;
      const float inv = 1.f / float(bag.size());
      const float* src = g + int64_t(i) * d;
      for (int id : bag) {
        float* dst = gw + int64_t(id) * d;
        for (int64_t j = 0; j < d; ++j) dst[j] += inv * src[j];
      }
    }
  });
}

Tensor SoftmaxRows(const Tensor& x) {
  TURL_PROFILE_SCOPE("op.softmax");
  TURL_CHECK(x.defined());
  TURL_CHECK_EQ(x.ndim(), 2);
  const int64_t m = x.dim(0), n = x.dim(1);
  std::vector<float> out = kernels::AllocBuffer(size_t(m * n), /*zero=*/false);
  kernels::SoftmaxRowsForward(x.data(), out.data(), m, n);
  auto px = x.impl();
  return MakeNode(x.shape(), std::move(out), {px}, [px, m, n](TensorImpl* o) {
    TURL_PROFILE_SCOPE("op.softmax.backward");
    kernels::SoftmaxRowsBackward(o->data.data(), o->grad.data(),
                                 GradOf(px.get()), m, n);
  });
}

Tensor MultiHeadAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                          const std::vector<float>& additive_mask,
                          int num_heads) {
  TURL_PROFILE_SCOPE("op.attention");
  TURL_CHECK(q.defined() && k.defined() && v.defined());
  TURL_CHECK_EQ(q.ndim(), 2);
  TURL_CHECK(q.shape() == k.shape() && q.shape() == v.shape());
  const int64_t n = q.dim(0), d = q.dim(1);
  TURL_CHECK_GT(num_heads, 0);
  TURL_CHECK_EQ(d % num_heads, 0);
  TURL_CHECK_EQ(static_cast<int64_t>(additive_mask.size()), n * n);
  const int64_t dh = d / num_heads;
  const float scale = 1.f / std::sqrt(float(dh));

  // probs holds the n x n post-softmax attention matrix of every head
  // (head h at offset h*n*n), retained for the backward pass. Per head:
  // scores = Q_h K_h^T via a strided GemmNT that addresses the head's
  // column slice directly, fused mask+scale+softmax epilogue, then
  // out_h = P V_h via a strided GemmNN writing the head's output slice.
  auto probs = std::make_shared<kernels::PooledBuffer>(
      size_t(num_heads) * size_t(n * n), /*zero=*/false);
  std::vector<float> out = kernels::AllocBuffer(size_t(n * d), /*zero=*/false);
  const float* qd = q.data();
  const float* kd = k.data();
  const float* vd = v.data();

  for (int h = 0; h < num_heads; ++h) {
    float* p = probs->data() + int64_t(h) * n * n;
    const int64_t off = int64_t(h) * dh;
    kernels::GemmNT(n, n, dh, qd + off, d, kd + off, d, p, n,
                    /*accumulate=*/false);
    kernels::MaskedScaledSoftmaxRows(p, additive_mask.data(), scale, n, n);
    kernels::GemmNN(n, dh, n, p, n, vd + off, d, out.data() + off, d,
                    /*accumulate=*/false);
  }

  auto pq = q.impl(), pk = k.impl(), pv = v.impl();
  return MakeNode(
      {n, d}, std::move(out), {pq, pk, pv},
      [pq, pk, pv, probs, n, d, dh, num_heads, scale](TensorImpl* o) {
        TURL_PROFILE_SCOPE("op.attention.backward");
        const float* g = o->grad.data();
        float* gq = GradOf(pq.get());
        float* gk = GradOf(pk.get());
        float* gv = GradOf(pv.get());
        const float* qd2 = pq->data.data();
        const float* kd2 = pk->data.data();
        const float* vd2 = pv->data.data();
        // dP/dS scratch for one head, recycled via the arena.
        kernels::PooledBuffer dp(size_t(n * n), /*zero=*/false);
        for (int h = 0; h < num_heads; ++h) {
          const float* p = probs->data() + int64_t(h) * n * n;
          const int64_t off = int64_t(h) * dh;
          // dV_h += P^T dO_h ; dP = dO_h V_h^T.
          kernels::GemmTN(n, dh, n, p, n, g + off, d, gv + off, d,
                          /*accumulate=*/true);
          kernels::GemmNT(n, n, dh, g + off, d, vd2 + off, d, dp.data(), n,
                          /*accumulate=*/false);
          // dS = scale * P * (dP - rowdot(P, dP)), in place over dp.
          kernels::SoftmaxGradInPlace(p, dp.data(), scale, n, n);
          // dQ_h += dS K_h ; dK_h += dS^T Q_h.
          kernels::GemmNN(n, dh, n, dp.data(), n, kd2 + off, d, gq + off, d,
                          /*accumulate=*/true);
          kernels::GemmTN(n, dh, n, dp.data(), n, qd2 + off, d, gk + off, d,
                          /*accumulate=*/true);
        }
      });
}

Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng) {
  TURL_PROFILE_SCOPE("op.dropout");
  TURL_CHECK(x.defined());
  if (!training || p <= 0.f) return x;
  TURL_CHECK_LT(p, 1.f);
  TURL_CHECK(rng != nullptr);
  const float keep_scale = 1.f / (1.f - p);
  const float* xd = x.data();
  const size_t sz = x.impl()->data.size();
  auto mask = std::make_shared<kernels::PooledBuffer>(sz, /*zero=*/false);
  std::vector<float> out = kernels::AllocBuffer(sz, /*zero=*/false);
  float* md = mask->data();
  for (size_t i = 0; i < sz; ++i) {
    const float m = rng->Bernoulli(p) ? 0.f : keep_scale;
    md[i] = m;
    out[i] = xd[i] * m;
  }
  auto px = x.impl();
  return MakeNode(x.shape(), std::move(out), {px}, [px, mask](TensorImpl* o) {
    const float* g = o->grad.data();
    float* gx = GradOf(px.get());
    const float* md2 = mask->data();
    for (size_t i = 0; i < o->data.size(); ++i) gx[i] += g[i] * md2[i];
  });
}

Tensor SoftmaxCrossEntropy(const Tensor& logits,
                           const std::vector<int>& targets, int ignore_index) {
  TURL_PROFILE_SCOPE("op.softmax_xent");
  TURL_CHECK(logits.defined());
  TURL_CHECK_EQ(logits.ndim(), 2);
  const int64_t m = logits.dim(0), c = logits.dim(1);
  TURL_CHECK_EQ(static_cast<int64_t>(targets.size()), m);

  // softmax probabilities retained for the backward pass.
  auto probs =
      std::make_shared<kernels::PooledBuffer>(size_t(m * c), /*zero=*/false);
  kernels::SoftmaxRowsForward(logits.data(), probs->data(), m, c);
  const float* pd = probs->data();
  double loss = 0.0;
  int64_t valid = 0;
  for (int64_t i = 0; i < m; ++i) {
    const int t = targets[size_t(i)];
    if (t == ignore_index) continue;
    TURL_CHECK_GE(t, 0);
    TURL_CHECK_LT(t, c);
    loss -= std::log(std::max(pd[i * c + t], 1e-12f));
    ++valid;
  }
  const float inv = valid > 0 ? 1.f / float(valid) : 0.f;
  auto pl = logits.impl();
  return MakeNode(
      {1}, {float(loss) * inv}, {pl},
      [pl, probs, targets, ignore_index, m, c, inv](TensorImpl* o) {
        TURL_PROFILE_SCOPE("op.softmax_xent.backward");
        const float go = o->grad[0];
        float* gl = GradOf(pl.get());
        const float* pd2 = probs->data();
        for (int64_t i = 0; i < m; ++i) {
          const int t = targets[size_t(i)];
          if (t == ignore_index) continue;
          for (int64_t j = 0; j < c; ++j) {
            float d = pd2[i * c + j];
            if (j == t) d -= 1.f;
            gl[i * c + j] += go * inv * d;
          }
        }
      });
}

Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& targets) {
  TURL_PROFILE_SCOPE("op.bce");
  TURL_CHECK(logits.defined());
  TURL_CHECK_EQ(logits.numel(), static_cast<int64_t>(targets.size()));
  const int64_t n = logits.numel();
  TURL_CHECK_GT(n, 0);
  const float* z = logits.data();
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const float zi = z[size_t(i)];
    const float ti = targets[size_t(i)];
    // Stable: max(z,0) - z*t + log(1 + exp(-|z|)).
    loss += std::max(zi, 0.f) - zi * ti + std::log1p(std::exp(-std::abs(zi)));
  }
  const float inv = 1.f / float(n);
  auto pl = logits.impl();
  return MakeNode({1}, {float(loss) * inv}, {pl},
                  [pl, targets, n, inv](TensorImpl* o) {
                    const float go = o->grad[0];
                    float* gl = GradOf(pl.get());
                    const float* z2 = pl->data.data();
                    for (int64_t i = 0; i < n; ++i) {
                      const float s = 1.f / (1.f + std::exp(-z2[size_t(i)]));
                      gl[i] += go * inv * (s - targets[size_t(i)]);
                    }
                  });
}

Tensor SumAll(const Tensor& x) {
  TURL_CHECK(x.defined());
  double s = 0.0;
  for (float v : x.impl()->data) s += v;
  auto px = x.impl();
  return MakeNode({1}, {float(s)}, {px}, [px](TensorImpl* o) {
    const float go = o->grad[0];
    float* gx = GradOf(px.get());
    for (size_t i = 0; i < px->data.size(); ++i) gx[i] += go;
  });
}

Tensor MeanAll(const Tensor& x) {
  TURL_CHECK(x.defined());
  TURL_CHECK_GT(x.numel(), 0);
  return Scale(SumAll(x), 1.f / float(x.numel()));
}

}  // namespace nn
}  // namespace turl
