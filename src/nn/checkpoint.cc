#include "nn/checkpoint.h"

#include <cstring>
#include <unordered_map>

#include "util/serialize.h"

namespace turl {
namespace nn {

namespace {
constexpr uint32_t kMagic = 0x5455524Cu;  // "TURL"
constexpr uint32_t kVersion = 1;
}  // namespace

Status SaveCheckpoint(const ParamStore& store, const std::string& path) {
  BinaryWriter w(path);
  w.WriteU32(kMagic);
  w.WriteU32(kVersion);
  w.WriteU64(store.params().size());
  for (const auto& [name, t] : store.params()) {
    w.WriteString(name);
    w.WriteU64(t.shape().size());
    for (int64_t d : t.shape()) w.WriteI64(d);
    w.WriteFloatVector(t.ToVector());
  }
  return w.Close();
}

Status LoadCheckpoint(ParamStore* store, const std::string& path) {
  BinaryReader r(path);
  if (!r.status().ok()) return r.status();
  if (r.ReadU32() != kMagic) return Status::IoError("bad checkpoint magic");
  if (r.ReadU32() != kVersion) return Status::IoError("bad checkpoint version");
  const uint64_t count = r.ReadU64();
  if (!r.status().ok()) return r.status();
  if (count != store->params().size()) {
    return Status::FailedPrecondition(
        "checkpoint has " + std::to_string(count) + " params, store has " +
        std::to_string(store->params().size()));
  }
  std::unordered_map<std::string, Tensor> by_name;
  for (const auto& [name, t] : store->params()) by_name.emplace(name, t);
  // Stage every parameter first: a file that fails at param k must not have
  // already overwritten params 0..k-1 (the old in-place loop corrupted the
  // store on truncated or mismatched files).
  std::vector<Tensor> targets;
  std::vector<std::vector<float>> staged;
  targets.reserve(count);
  staged.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const std::string name = r.ReadString();
    const uint64_t rank = r.ReadU64();
    if (!r.status().ok()) return r.status();
    if (rank > r.remaining() / sizeof(int64_t)) {
      return Status::IoError("corrupt rank for param '" + name + "'");
    }
    Shape shape(rank);
    for (uint64_t d = 0; d < rank; ++d) shape[d] = r.ReadI64();
    std::vector<float> data = r.ReadFloatVector();
    if (!r.status().ok()) return r.status();
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::FailedPrecondition("unknown parameter in checkpoint: " +
                                        name);
    }
    Tensor t = it->second;
    if (t.shape() != shape) {
      return Status::FailedPrecondition("shape mismatch for " + name + ": " +
                                        ShapeToString(t.shape()) + " vs " +
                                        ShapeToString(shape));
    }
    if (data.size() != size_t(t.numel())) {
      return Status::IoError("element count mismatch for " + name + ": " +
                             std::to_string(data.size()) + " vs " +
                             std::to_string(t.numel()));
    }
    targets.push_back(t);
    staged.push_back(std::move(data));
  }
  if (r.remaining() != 0) {
    return Status::IoError("trailing bytes after checkpoint payload: " +
                           std::to_string(r.remaining()));
  }
  // Fully validated — commit. Nothing below can fail.
  for (size_t i = 0; i < targets.size(); ++i) {
    std::memcpy(targets[i].data(), staged[i].data(),
                staged[i].size() * sizeof(float));
  }
  return Status::OK();
}

}  // namespace nn
}  // namespace turl
