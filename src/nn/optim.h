#ifndef TURL_NN_OPTIM_H_
#define TURL_NN_OPTIM_H_

#include <cstdint>
#include <vector>

#include "nn/module.h"
#include "util/status.h"

namespace turl {
namespace nn {

/// Adam configuration. Defaults follow the paper's pre-training setup
/// (Adam, initial LR 1e-4 with linear decay).
struct AdamConfig {
  float lr = 1e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

/// Adam optimizer over a ParamStore. Holds first/second moment buffers per
/// parameter; Step() consumes the accumulated gradients and ZeroGrad()s
/// nothing (callers own the zeroing so they can accumulate across batches).
class Adam {
 public:
  Adam(ParamStore* store, AdamConfig config);

  /// One update using `lr_scale` * config.lr as the effective learning rate
  /// (used by the linear-decay schedule). Parameters without gradients are
  /// skipped.
  void Step(float lr_scale = 1.0f);

  int64_t step_count() const { return step_; }
  const AdamConfig& config() const { return config_; }

  /// Checkpoint access to the per-parameter moment buffers, parallel to
  /// store->params().
  const std::vector<std::vector<float>>& first_moments() const { return m_; }
  const std::vector<std::vector<float>>& second_moments() const { return v_; }

  /// Restores moments and step counter (the bias-correction clock) from a
  /// checkpoint. Every buffer must match the construction-time layout —
  /// anything else is a FailedPrecondition and the optimizer is untouched.
  Status SetState(std::vector<std::vector<float>> m,
                  std::vector<std::vector<float>> v, int64_t step);

 private:
  ParamStore* store_;
  AdamConfig config_;
  int64_t step_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

/// Linearly decaying learning-rate multiplier: 1 at step 0 down to
/// `final_fraction` at `total_steps` (clamped beyond). Matches the paper's
/// "linearly decreasing learning rate".
class LinearDecaySchedule {
 public:
  LinearDecaySchedule(int64_t total_steps, float final_fraction = 0.0f);

  /// Multiplier for the given 0-based step.
  float Scale(int64_t step) const;

 private:
  int64_t total_steps_;
  float final_fraction_;
};

}  // namespace nn
}  // namespace turl

#endif  // TURL_NN_OPTIM_H_
