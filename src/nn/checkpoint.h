#ifndef TURL_NN_CHECKPOINT_H_
#define TURL_NN_CHECKPOINT_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace turl {
namespace nn {

/// Writes every parameter of `store` (name, shape, data) to `path`.
Status SaveCheckpoint(const ParamStore& store, const std::string& path);

/// Loads a checkpoint into an already-constructed ParamStore. Every
/// parameter in the file must exist in `store` with a matching shape and
/// vice versa (architectural mismatch is an error, not a partial load).
/// All parameters are staged and validated before any are committed, so a
/// truncated or mismatched file leaves the store completely untouched.
/// This is the legacy v1 format; new code writes v2 via ckpt::SaveModel.
Status LoadCheckpoint(ParamStore* store, const std::string& path);

}  // namespace nn
}  // namespace turl

#endif  // TURL_NN_CHECKPOINT_H_
