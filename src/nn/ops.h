#ifndef TURL_NN_OPS_H_
#define TURL_NN_OPS_H_

#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace turl {
namespace nn {

/// Differentiable operations. Every op validates shapes with TURL_CHECK,
/// returns a fresh tensor wired into the autograd DAG, and accumulates
/// gradients into its inputs during Tensor::Backward(). Tensors are rank-2
/// matrices [rows, cols] unless stated otherwise; scalars are shape [1].

/// Elementwise a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise a * b (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);

/// a * s for a compile-time constant scalar s (no gradient w.r.t. s).
Tensor Scale(const Tensor& a, float s);

/// x [m,n] + row-broadcast bias b [n].
Tensor AddBias(const Tensor& x, const Tensor& b);

/// Matrix product A [m,k] x B [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// A [m,k] x B^T for B [n,k] -> [m,n]. Used for scoring against embedding
/// rows without materializing a transpose.
Tensor MatMulNT(const Tensor& a, const Tensor& b);

/// GELU activation (tanh approximation, as used by BERT).
Tensor Gelu(const Tensor& x);

/// ReLU activation.
Tensor Relu(const Tensor& x);

/// tanh activation.
Tensor TanhOp(const Tensor& x);

/// Logistic sigmoid.
Tensor SigmoidOp(const Tensor& x);

/// Row-wise layer normalization with learned gain/bias:
/// y = gamma * (x - mu) / sqrt(var + eps) + beta, per row of x [m,n];
/// gamma and beta are [n].
Tensor LayerNormOp(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                   float eps = 1e-5f);

/// Gathers rows of `weight` [V,d] at `ids` -> [ids.size(), d]. Gradient
/// scatter-adds into the gathered rows. ids must be in [0, V).
Tensor EmbeddingLookup(const Tensor& weight, const std::vector<int>& ids);

/// Concatenates along columns: a [m,p], b [m,q] -> [m,p+q].
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Concatenates along rows; all inputs share the column count.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Gathers rows of x at `rows` -> [rows.size(), d].
Tensor SelectRows(const Tensor& x, const std::vector<int>& rows);

/// Mean of the selected rows of x -> [1, d]. `rows` must be non-empty.
Tensor RowsMean(const Tensor& x, const std::vector<int>& rows);

/// For each bag of row indices into `weight` [V,d], the mean of those rows
/// -> [bags.size(), d]. Empty bags produce zero rows (and receive no
/// gradient). This is the fused "average word embeddings of a mention"
/// operation (Eqn. 3 of the paper), cheaper than per-bag RowsMean chains.
Tensor BagMean(const Tensor& weight, const std::vector<std::vector<int>>& bags);

/// Row-wise softmax (differentiable); used by inference-time rankers.
Tensor SoftmaxRows(const Tensor& x);

/// Structure-aware scaled dot-product multi-head attention (Eqn. 4 of the
/// paper). q, k, v are post-projection [n, d] with d divisible by
/// `num_heads`. `additive_mask` has n*n entries, row-major: 0 where
/// element j is visible to element i and a large negative value (e.g. -1e9)
/// where it is masked — exactly the visibility matrix M rendered additively.
/// Returns the concatenated head outputs [n, d] (before the output
/// projection, which callers apply as a Linear).
Tensor MultiHeadAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                          const std::vector<float>& additive_mask,
                          int num_heads);

/// Inverted dropout: at train time zeroes entries with probability p and
/// scales survivors by 1/(1-p); identity at eval time or when p == 0.
Tensor Dropout(const Tensor& x, float p, bool training, Rng* rng);

/// Mean softmax cross-entropy over rows: logits [m,C], targets m class ids.
/// Rows whose target is `ignore_index` contribute nothing; the mean divides
/// by the number of non-ignored rows (loss is 0 if all rows are ignored).
Tensor SoftmaxCrossEntropy(const Tensor& logits, const std::vector<int>& targets,
                           int ignore_index = -1);

/// Mean binary cross-entropy with logits over every element of `logits`
/// (any shape); `targets` are 0/1 (or soft) labels, flat, same numel.
Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& targets);

/// Sum of all elements -> scalar.
Tensor SumAll(const Tensor& x);

/// Mean of all elements -> scalar.
Tensor MeanAll(const Tensor& x);

}  // namespace nn
}  // namespace turl

#endif  // TURL_NN_OPS_H_
