#include "nn/kernels/quant.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include "nn/kernels/threading.h"
#include "obs/profiler.h"
#include "util/logging.h"

namespace turl {
namespace nn {
namespace kernels {

namespace {

constexpr int64_t kQuantAlign = 32;    // One YMM of int8 lanes.
constexpr int64_t kQuantRowPanel = 256;

int64_t PaddedStride(int64_t cols) {
  return (cols + kQuantAlign - 1) / kQuantAlign * kQuantAlign;
}

int8_t QuantizeValue(float v, float inv_scale) {
  const long q = std::lrintf(v * inv_scale);
  return static_cast<int8_t>(std::clamp<long>(q, -127, 127));
}

/// The one float operation both paths share: identical expression, so a
/// bitwise-equal integer accumulator yields a bitwise-equal score.
inline float Rescale(int32_t acc, float w_scale, float x_scale) {
  return static_cast<float>(acc) * (w_scale * x_scale);
}

inline int32_t DotI8Scalar(const int8_t* w, const int8_t* xq, int64_t stride) {
  int32_t acc = 0;
  for (int64_t t = 0; t < stride; ++t) {
    acc += static_cast<int32_t>(w[t]) * static_cast<int32_t>(xq[t]);
  }
  return acc;
}

#if defined(__AVX2__) && defined(__FMA__)
/// maddubs wants unsigned x signed operands and saturates its int16 pair
/// sums; |x| (*) sign-adjusted w keeps every product in [-16129, 16129], so
/// a pair sum tops out at 32258 < INT16_MAX and the accumulation is exact —
/// bitwise identical to the scalar loop.
inline int32_t DotI8(const int8_t* w, const int8_t* xq, int64_t stride) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi16(1);
  for (int64_t t = 0; t < stride; t += kQuantAlign) {
    const __m256i xv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xq + t));
    const __m256i wv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + t));
    const __m256i xabs = _mm256_sign_epi8(xv, xv);
    const __m256i wsgn = _mm256_sign_epi8(wv, xv);
    acc = _mm256_add_epi32(
        acc, _mm256_madd_epi16(_mm256_maddubs_epi16(xabs, wsgn), ones));
  }
  const __m128i half = _mm_add_epi32(_mm256_castsi256_si128(acc),
                                     _mm256_extracti128_si256(acc, 1));
  const __m128i pair =
      _mm_add_epi32(half, _mm_shuffle_epi32(half, _MM_SHUFFLE(1, 0, 3, 2)));
  const __m128i one =
      _mm_add_epi32(pair, _mm_shuffle_epi32(pair, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(one);
}
#else
inline int32_t DotI8(const int8_t* w, const int8_t* xq, int64_t stride) {
  return DotI8Scalar(w, xq, stride);
}
#endif

std::atomic<int> g_quant_scoring{-1};  // -1: resolve from the environment.

}  // namespace

QuantizedMatrix QuantizeRows(const float* w, int64_t rows, int64_t cols,
                             int64_t row_stride, int64_t col_stride) {
  TURL_PROFILE_SCOPE("kernel.quant_pack");
  QuantizedMatrix q;
  q.rows = rows;
  q.cols = cols;
  q.stride = PaddedStride(cols);
  q.data.assign(static_cast<size_t>(rows * q.stride), 0);
  q.scales.assign(static_cast<size_t>(rows), 0.f);
  for (int64_t i = 0; i < rows; ++i) {
    const float* row = w + i * row_stride;
    float max_abs = 0.f;
    for (int64_t j = 0; j < cols; ++j) {
      max_abs = std::max(max_abs, std::fabs(row[j * col_stride]));
    }
    q.scales[static_cast<size_t>(i)] = max_abs / 127.f;
    if (max_abs == 0.f) continue;
    const float inv = 127.f / max_abs;
    int8_t* out = q.data.data() + i * q.stride;
    for (int64_t j = 0; j < cols; ++j) {
      out[j] = QuantizeValue(row[j * col_stride], inv);
    }
  }
  return q;
}

float QuantizeActivation(const float* x, int64_t n, int64_t stride,
                         int8_t* out) {
  TURL_CHECK_GE(stride, n);
  float max_abs = 0.f;
  for (int64_t t = 0; t < n; ++t) max_abs = std::max(max_abs, std::fabs(x[t]));
  std::fill(out + n, out + stride, 0);
  if (max_abs == 0.f) {
    std::fill(out, out + n, 0);
    return 0.f;
  }
  const float inv = 127.f / max_abs;
  for (int64_t t = 0; t < n; ++t) out[t] = QuantizeValue(x[t], inv);
  return max_abs / 127.f;
}

void QuantizedGemv(const QuantizedMatrix& w, const int8_t* xq, float x_scale,
                   float* y, bool accumulate) {
  TURL_PROFILE_SCOPE("kernel.gemv_i8");
  const int64_t panels = (w.rows + kQuantRowPanel - 1) / kQuantRowPanel;
  ParallelPanels(panels, w.rows * w.stride, [&](int64_t p) {
    const int64_t i0 = p * kQuantRowPanel;
    const int64_t i1 = std::min<int64_t>(w.rows, i0 + kQuantRowPanel);
    for (int64_t i = i0; i < i1; ++i) {
      const float s = Rescale(DotI8(w.data.data() + i * w.stride, xq, w.stride),
                              w.scales[static_cast<size_t>(i)], x_scale);
      if (accumulate) {
        y[i] += s;
      } else {
        y[i] = s;
      }
    }
  });
}

void QuantizedGemvRows(const QuantizedMatrix& w, const int* rows,
                       int64_t num_rows, const int8_t* xq, float x_scale,
                       float* y, bool accumulate) {
  TURL_PROFILE_SCOPE("kernel.gemv_i8");
  const int64_t panels = (num_rows + kQuantRowPanel - 1) / kQuantRowPanel;
  ParallelPanels(panels, num_rows * w.stride, [&](int64_t p) {
    const int64_t r0 = p * kQuantRowPanel;
    const int64_t r1 = std::min<int64_t>(num_rows, r0 + kQuantRowPanel);
    for (int64_t r = r0; r < r1; ++r) {
      const int64_t i = rows[r];
      const float s = Rescale(DotI8(w.data.data() + i * w.stride, xq, w.stride),
                              w.scales[static_cast<size_t>(i)], x_scale);
      if (accumulate) {
        y[r] += s;
      } else {
        y[r] = s;
      }
    }
  });
}

void QuantizedScore(const QuantizedMatrix& w, const float* x, float* y) {
  std::vector<int8_t> xq(static_cast<size_t>(w.stride));
  const float x_scale = QuantizeActivation(x, w.cols, w.stride, xq.data());
  QuantizedGemv(w, xq.data(), x_scale, y, /*accumulate=*/false);
}

void QuantizedScoreRows(const QuantizedMatrix& w, const int* rows,
                        int64_t num_rows, const float* x, float* y) {
  std::vector<int8_t> xq(static_cast<size_t>(w.stride));
  const float x_scale = QuantizeActivation(x, w.cols, w.stride, xq.data());
  QuantizedGemvRows(w, rows, num_rows, xq.data(), x_scale, y,
                    /*accumulate=*/false);
}

namespace naive {

void QuantizedGemv(const QuantizedMatrix& w, const int8_t* xq, float x_scale,
                   float* y, bool accumulate) {
  for (int64_t i = 0; i < w.rows; ++i) {
    const float s =
        Rescale(DotI8Scalar(w.data.data() + i * w.stride, xq, w.stride),
                w.scales[static_cast<size_t>(i)], x_scale);
    if (accumulate) {
      y[i] += s;
    } else {
      y[i] = s;
    }
  }
}

void QuantizedGemvRows(const QuantizedMatrix& w, const int* rows,
                       int64_t num_rows, const int8_t* xq, float x_scale,
                       float* y, bool accumulate) {
  for (int64_t r = 0; r < num_rows; ++r) {
    const int64_t i = rows[r];
    const float s =
        Rescale(DotI8Scalar(w.data.data() + i * w.stride, xq, w.stride),
                w.scales[static_cast<size_t>(i)], x_scale);
    if (accumulate) {
      y[r] += s;
    } else {
      y[r] = s;
    }
  }
}

}  // namespace naive

const QuantizedMatrix& QuantCache::Get(const float* w, int64_t rows,
                                       int64_t cols, int64_t row_stride,
                                       int64_t col_stride) {
  std::lock_guard<std::mutex> lock(mu_);
  if (m_.empty()) m_ = QuantizeRows(w, rows, cols, row_stride, col_stride);
  return m_;
}

void QuantCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  m_ = QuantizedMatrix{};
}

bool QuantScoringEnabled() {
  int v = g_quant_scoring.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("TURL_QUANT_SCORING");
    v = (env != nullptr && env[0] == '1') ? 1 : 0;
    g_quant_scoring.store(v, std::memory_order_relaxed);
  }
  return v == 1;
}

void SetQuantScoringForTest(int v) {
  g_quant_scoring.store(v, std::memory_order_relaxed);
}

}  // namespace kernels
}  // namespace nn
}  // namespace turl
