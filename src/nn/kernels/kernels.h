#ifndef TURL_NN_KERNELS_KERNELS_H_
#define TURL_NN_KERNELS_KERNELS_H_

/// Umbrella header for the turl::nn::kernels compute layer (DESIGN.md §8):
/// blocked/SIMD GEMM, fused row kernels, the per-thread buffer arena and
/// the shared intra-op thread pool. The nn ops dispatch here; nothing in
/// this layer knows about tensors or autograd.

#include "nn/kernels/arena.h"
#include "nn/kernels/gemm.h"
#include "nn/kernels/gemv.h"
#include "nn/kernels/quant.h"
#include "nn/kernels/rowwise.h"
#include "nn/kernels/threading.h"

#endif  // TURL_NN_KERNELS_KERNELS_H_
