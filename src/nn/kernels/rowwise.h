#ifndef TURL_NN_KERNELS_ROWWISE_H_
#define TURL_NN_KERNELS_ROWWISE_H_

#include <cstdint>

namespace turl {
namespace nn {
namespace kernels {

/// Fused row kernels: each call makes a single pass over the matrix doing
/// all the per-row work (max/exp/normalize, moments/normalize, ...) so the
/// ops layer never materializes intermediate row statistics. Rows are
/// independent, so large matrices parallelize over row panels with bitwise
/// identical results at any thread count (see threading.h).

/// Row-wise softmax of x [m,n] into y (y == x allowed). Subtracts the row
/// max before exponentiating, so logits anywhere in float range stay
/// finite.
void SoftmaxRowsForward(const float* x, float* y, int64_t m, int64_t n);

/// In-place fused attention-score epilogue: scores[i,j] becomes
/// softmax_j(scores[i,j] * scale + mask[i,j]) for mask rows laid out with
/// stride n. `mask` may be null (plain scaled softmax).
void MaskedScaledSoftmaxRows(float* scores, const float* mask, float scale,
                             int64_t m, int64_t n);

/// Softmax backward: dx[i,j] += y[i,j] * (dy[i,j] - sum_j y[i,j]*dy[i,j]).
void SoftmaxRowsBackward(const float* y, const float* dy, float* dx,
                         int64_t m, int64_t n);

/// Softmax backward specialized for attention: overwrites d (dy on entry)
/// with scale * y * (dy - rowdot(y, dy)).
void SoftmaxGradInPlace(const float* y, float* d, float scale, int64_t m,
                        int64_t n);

/// Layer normalization forward over rows of x [m,n]:
/// y = gamma * (x - mu) / sqrt(var + eps) + beta. Also writes the
/// normalized activations to xhat [m,n] and 1/sqrt(var+eps) to inv_std [m]
/// for the backward pass. Row moments come from a single fused
/// sum/sum-of-squares pass.
void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float eps, float* y, float* xhat, float* inv_std,
                      int64_t m, int64_t n);

/// Layer normalization backward; accumulates into dx [m,n], dgamma [n] and
/// dbeta [n] (the reductions over rows keep dgamma/dbeta updates on the
/// caller thread — this kernel never parallelizes).
void LayerNormBackward(const float* dy, const float* gamma, const float* xhat,
                       const float* inv_std, float* dx, float* dgamma,
                       float* dbeta, int64_t m, int64_t n);

/// Elementwise activation family, fused forward/backward passes.
enum class Act { kGelu, kRelu, kTanh, kSigmoid };

void ActivationForward(Act act, const float* x, float* y, int64_t n);

/// dx[i] += dy[i] * act'(x[i]); tanh/sigmoid read the saved output y, the
/// others read the input x.
void ActivationBackward(Act act, const float* x, const float* y,
                        const float* dy, float* dx, int64_t n);

}  // namespace kernels
}  // namespace nn
}  // namespace turl

#endif  // TURL_NN_KERNELS_ROWWISE_H_
