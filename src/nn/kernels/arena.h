#ifndef TURL_NN_KERNELS_ARENA_H_
#define TURL_NN_KERNELS_ARENA_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace turl {
namespace nn {
namespace kernels {

/// Per-thread buffer pool for autograd intermediates. Tensor shapes recur
/// exactly step after step (same model, same batch layout), so recycling
/// buffers by exact element count turns the per-op heap allocation of the
/// naive ops into a freelist pop: in steady state a forward+backward encode
/// step performs O(1) new heap allocations for tensor storage.
///
/// Lifetime rules:
///  - While an ArenaScope is active on a thread, ops allocate their output
///    (and later their gradient) buffers via the pool, and the resulting
///    TensorImpl is marked pooled.
///  - A pooled impl returns its buffers to the pool of whichever thread
///    destroys it — typically when Tensor::Backward(release_graph=true)
///    severs the tape and the intermediates die, or when the caller drops
///    the last tensor holding the graph.
///  - Pools are thread-local: no locks on the hot path. A buffer leased on
///    one thread and recycled on another simply migrates; per-class and
///    total-byte caps keep any pool bounded.
///
/// Observability: pool hits increment the `nn.arena_reuse` counter, fresh
/// heap allocations increment `nn.heap_alloc` (turl::obs metrics), so the
/// recycling behaviour is assertable in tests and visible in BENCH dumps.

/// RAII marker making the current thread's op allocations pool-backed.
/// Scopes nest; re-entering costs one thread-local increment.
class ArenaScope {
 public:
  ArenaScope();
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
};

/// True while at least one ArenaScope is alive on this thread.
bool ArenaActive();

/// Buffer of n floats from the pool (always pool-backed, regardless of
/// ArenaActive). Reused buffers hold stale values unless `zero`; fresh
/// allocations are always zeroed (vector semantics).
std::vector<float> LeasePooled(std::size_t n, bool zero);

/// Buffer of n floats for an op output: pool-backed iff an ArenaScope is
/// active, plain heap otherwise.
std::vector<float> AllocBuffer(std::size_t n, bool zero);

/// Returns a buffer (any origin) to this thread's pool; no-op for empty
/// buffers and during thread teardown.
void RecycleBuffer(std::vector<float>&& buf);

/// Drops every cached buffer of the calling thread's pool (tests).
void ClearThreadBufferPool();

/// RAII scratch buffer leased from the pool — for op-internal state that
/// outlives the forward call via the backward closure (attention
/// probabilities, layernorm row statistics) but is not a TensorImpl.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(std::size_t n, bool zero) : buf_(LeasePooled(n, zero)) {}
  ~PooledBuffer() {
    if (!buf_.empty()) RecycleBuffer(std::move(buf_));
  }
  PooledBuffer(PooledBuffer&& o) noexcept : buf_(std::move(o.buf_)) {
    o.buf_.clear();
  }
  PooledBuffer& operator=(PooledBuffer&& o) noexcept {
    if (this != &o) {
      if (!buf_.empty()) RecycleBuffer(std::move(buf_));
      buf_ = std::move(o.buf_);
      o.buf_.clear();
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  float* data() { return buf_.data(); }
  const float* data() const { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<float> buf_;
};

}  // namespace kernels
}  // namespace nn
}  // namespace turl

#endif  // TURL_NN_KERNELS_ARENA_H_
