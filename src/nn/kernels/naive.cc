// The scalar triple-loop GEMMs that the blocked kernels replaced, preserved
// verbatim (plus leading-dimension support) as the equivalence oracle for
// the kernels test suite and the baseline bench_micro_kernels measures
// speedups against. This TU deliberately never receives the kernel SIMD
// compile flags — it is "the current naive loops" of the pre-kernel ops.

#include <algorithm>

#include "nn/kernels/gemm.h"
#include "nn/kernels/gemv.h"

namespace turl {
namespace nn {
namespace kernels {
namespace naive {

void GemmNN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
            const float* b, int64_t ldb, float* c, int64_t ldc,
            bool accumulate) {
  if (!accumulate) {
    for (int64_t i = 0; i < m; ++i) std::fill(c + i * ldc, c + i * ldc + n, 0.f);
  }
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.f) continue;
      const float* brow = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmNT(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
            const float* b, int64_t ldb, float* c, int64_t ldc,
            bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * ldb;
      float s = 0.f;
      for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      if (accumulate) {
        crow[j] += s;
      } else {
        crow[j] = s;
      }
    }
  }
}

void GemmTN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
            const float* b, int64_t ldb, float* c, int64_t ldc,
            bool accumulate) {
  if (!accumulate) {
    for (int64_t i = 0; i < m; ++i) std::fill(c + i * ldc, c + i * ldc + n, 0.f);
  }
  for (int64_t t = 0; t < k; ++t) {
    const float* arow = a + t * lda;
    const float* brow = b + t * ldb;
    for (int64_t r = 0; r < m; ++r) {
      const float av = arow[r];
      if (av == 0.f) continue;
      float* crow = c + r * ldc;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemvN(int64_t m, int64_t k, const float* a, int64_t lda, const float* x,
           float* y, bool accumulate) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float s = 0.f;
    for (int64_t t = 0; t < k; ++t) s += arow[t] * x[t];
    if (accumulate) {
      y[i] += s;
    } else {
      y[i] = s;
    }
  }
}

void GemvT(int64_t k, int64_t n, const float* b, int64_t ldb, const float* x,
           int64_t incx, float* y, bool accumulate) {
  if (!accumulate) std::fill(y, y + n, 0.f);
  for (int64_t t = 0; t < k; ++t) {
    const float xv = x[t * incx];
    if (xv == 0.f) continue;
    const float* brow = b + t * ldb;
    for (int64_t j = 0; j < n; ++j) y[j] += xv * brow[j];
  }
}

}  // namespace naive
}  // namespace kernels
}  // namespace nn
}  // namespace turl
