#ifndef TURL_NN_KERNELS_GEMM_H_
#define TURL_NN_KERNELS_GEMM_H_

#include <cstdint>

namespace turl {
namespace nn {
namespace kernels {

/// Cache-blocked, register-tiled single-precision GEMM family the nn ops
/// dispatch into. All matrices are row-major with an explicit leading
/// dimension (row stride), so callers can address sub-panels — e.g. one
/// attention head's column slice — without packing a transpose. Every
/// routine computes C = ... when `accumulate` is false and C += ... when it
/// is true; C is an m x n panel with row stride ldc.
///
/// Determinism contract: for each output element the k-reduction is
/// evaluated in ascending-k order with a fixed lane/accumulator structure,
/// and parallel execution (see threading.h) only partitions whole output
/// panels whose boundaries depend on the problem shape alone. Results are
/// therefore bitwise identical run-to-run and for any thread count.

/// C[m,n] (+)= A[m,k] * B[k,n].
void GemmNN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
            const float* b, int64_t ldb, float* c, int64_t ldc,
            bool accumulate);

/// C[m,n] (+)= A[m,k] * B[n,k]^T (dot products of row pairs; B is stored
/// untransposed with n rows of k entries).
void GemmNT(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
            const float* b, int64_t ldb, float* c, int64_t ldc,
            bool accumulate);

/// C[m,n] (+)= A'^T * B for A' stored as k rows of m entries (so C row r
/// reads A' column r) and B[k,n].
void GemmTN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
            const float* b, int64_t ldb, float* c, int64_t ldc,
            bool accumulate);

/// Small-m dispatch: shapes with m <= 4 (the task-head logits and serve
/// micro-batches) skip the 4x16 tile machinery entirely and run on the
/// GEMV layer (gemv.h) — row-dots for GemmNT, a single streaming
/// column-axpy sweep for GemmNN/GemmTN. On by default; the bench/test hook
/// below exposes the tiled path so its behaviour on edge shapes stays
/// measurable and pinned.
void SetSmallMGemvDispatch(bool enabled);
bool SmallMGemvDispatch();

/// Reference implementations: the scalar triple loops that predate the
/// blocked kernels, kept (in a TU compiled without the kernel SIMD flags)
/// as the equivalence oracle for tests and the baseline the perf benches
/// measure speedups against.
namespace naive {
void GemmNN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
            const float* b, int64_t ldb, float* c, int64_t ldc,
            bool accumulate);
void GemmNT(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
            const float* b, int64_t ldb, float* c, int64_t ldc,
            bool accumulate);
void GemmTN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
            const float* b, int64_t ldb, float* c, int64_t ldc,
            bool accumulate);
}  // namespace naive

}  // namespace kernels
}  // namespace nn
}  // namespace turl

#endif  // TURL_NN_KERNELS_GEMM_H_
