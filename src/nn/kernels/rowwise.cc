#include "nn/kernels/rowwise.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels/threading.h"
#include "obs/profiler.h"

namespace turl {
namespace nn {
namespace kernels {

namespace {

constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr int64_t kRowPanel = 64;

// exp/tanh cost far more than a mul-add; weight elements so the parallel
// gate (calibrated in mul-adds) opens for transcendental-heavy kernels of
// comparable wall time.
constexpr int64_t kTranscendentalWeight = 16;

int64_t RowPanels(int64_t m) { return (m + kRowPanel - 1) / kRowPanel; }

template <typename RowFn>
void ForEachRowPanel(int64_t m, int64_t n, const RowFn& fn) {
  ParallelPanels(RowPanels(m), m * n * kTranscendentalWeight,
                 [&](int64_t p) {
                   const int64_t i1 = std::min<int64_t>(m, (p + 1) * kRowPanel);
                   for (int64_t i = p * kRowPanel; i < i1; ++i) fn(i);
                 });
}

void SoftmaxRowInPlace(float* row, int64_t n) {
  float mx = row[0];
  for (int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
  float sum = 0.f;
  for (int64_t j = 0; j < n; ++j) {
    const float e = std::exp(row[j] - mx);
    row[j] = e;
    sum += e;
  }
  const float inv = 1.f / sum;
  for (int64_t j = 0; j < n; ++j) row[j] *= inv;
}

}  // namespace

void SoftmaxRowsForward(const float* x, float* y, int64_t m, int64_t n) {
  TURL_PROFILE_SCOPE("kernel.softmax");
  ForEachRowPanel(m, n, [&](int64_t i) {
    const float* row = x + i * n;
    float* out = y + i * n;
    float mx = row[0];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float sum = 0.f;
    for (int64_t j = 0; j < n; ++j) {
      const float e = std::exp(row[j] - mx);
      out[j] = e;
      sum += e;
    }
    const float inv = 1.f / sum;
    for (int64_t j = 0; j < n; ++j) out[j] *= inv;
  });
}

void MaskedScaledSoftmaxRows(float* scores, const float* mask, float scale,
                             int64_t m, int64_t n) {
  TURL_PROFILE_SCOPE("kernel.softmax");
  ForEachRowPanel(m, n, [&](int64_t i) {
    float* row = scores + i * n;
    if (mask != nullptr) {
      const float* mrow = mask + i * n;
      for (int64_t j = 0; j < n; ++j) row[j] = row[j] * scale + mrow[j];
    } else if (scale != 1.f) {
      for (int64_t j = 0; j < n; ++j) row[j] *= scale;
    }
    SoftmaxRowInPlace(row, n);
  });
}

void SoftmaxRowsBackward(const float* y, const float* dy, float* dx,
                         int64_t m, int64_t n) {
  TURL_PROFILE_SCOPE("kernel.softmax");
  ForEachRowPanel(m, n, [&](int64_t i) {
    const float* yr = y + i * n;
    const float* gr = dy + i * n;
    float* dr = dx + i * n;
    float dot = 0.f;
    for (int64_t j = 0; j < n; ++j) dot += yr[j] * gr[j];
    for (int64_t j = 0; j < n; ++j) dr[j] += yr[j] * (gr[j] - dot);
  });
}

void SoftmaxGradInPlace(const float* y, float* d, float scale, int64_t m,
                        int64_t n) {
  TURL_PROFILE_SCOPE("kernel.softmax");
  ForEachRowPanel(m, n, [&](int64_t i) {
    const float* yr = y + i * n;
    float* dr = d + i * n;
    float dot = 0.f;
    for (int64_t j = 0; j < n; ++j) dot += yr[j] * dr[j];
    for (int64_t j = 0; j < n; ++j) dr[j] = scale * yr[j] * (dr[j] - dot);
  });
}

void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float eps, float* y, float* xhat, float* inv_std,
                      int64_t m, int64_t n) {
  TURL_PROFILE_SCOPE("kernel.layernorm");
  const float inv_n = 1.f / float(n);
  ForEachRowPanel(m, n, [&](int64_t i) {
    const float* row = x + i * n;
    float sum = 0.f, sumsq = 0.f;
    for (int64_t j = 0; j < n; ++j) {
      const float v = row[j];
      sum += v;
      sumsq += v * v;
    }
    const float mu = sum * inv_n;
    const float var = std::max(0.f, sumsq * inv_n - mu * mu);
    const float is = 1.f / std::sqrt(var + eps);
    inv_std[i] = is;
    float* xh = xhat + i * n;
    float* out = y + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float h = (row[j] - mu) * is;
      xh[j] = h;
      out[j] = gamma[j] * h + beta[j];
    }
  });
}

void LayerNormBackward(const float* dy, const float* gamma, const float* xhat,
                       const float* inv_std, float* dx, float* dgamma,
                       float* dbeta, int64_t m, int64_t n) {
  TURL_PROFILE_SCOPE("kernel.layernorm");
  const float inv_n = 1.f / float(n);
  for (int64_t i = 0; i < m; ++i) {
    const float* grow = dy + i * n;
    const float* xh = xhat + i * n;
    float* dr = dx + i * n;
    const float is = inv_std[i];
    float mean_dxhat = 0.f, mean_dxhat_xhat = 0.f;
    for (int64_t j = 0; j < n; ++j) {
      const float dxh = grow[j] * gamma[j];
      mean_dxhat += dxh;
      mean_dxhat_xhat += dxh * xh[j];
    }
    mean_dxhat *= inv_n;
    mean_dxhat_xhat *= inv_n;
    for (int64_t j = 0; j < n; ++j) {
      const float dxh = grow[j] * gamma[j];
      dr[j] += is * (dxh - mean_dxhat - xh[j] * mean_dxhat_xhat);
      dgamma[j] += grow[j] * xh[j];
      dbeta[j] += grow[j];
    }
  }
}

void ActivationForward(Act act, const float* x, float* y, int64_t n) {
  switch (act) {
    case Act::kGelu:
      for (int64_t i = 0; i < n; ++i) {
        const float v = x[i];
        const float inner = kGeluC * (v + 0.044715f * v * v * v);
        y[i] = 0.5f * v * (1.f + std::tanh(inner));
      }
      break;
    case Act::kRelu:
      for (int64_t i = 0; i < n; ++i) y[i] = x[i] > 0.f ? x[i] : 0.f;
      break;
    case Act::kTanh:
      for (int64_t i = 0; i < n; ++i) y[i] = std::tanh(x[i]);
      break;
    case Act::kSigmoid:
      for (int64_t i = 0; i < n; ++i) y[i] = 1.f / (1.f + std::exp(-x[i]));
      break;
  }
}

void ActivationBackward(Act act, const float* x, const float* y,
                        const float* dy, float* dx, int64_t n) {
  switch (act) {
    case Act::kGelu:
      for (int64_t i = 0; i < n; ++i) {
        const float v = x[i];
        const float inner = kGeluC * (v + 0.044715f * v * v * v);
        const float t = std::tanh(inner);
        const float dinner = kGeluC * (1.f + 3.f * 0.044715f * v * v);
        const float d = 0.5f * (1.f + t) + 0.5f * v * (1.f - t * t) * dinner;
        dx[i] += dy[i] * d;
      }
      break;
    case Act::kRelu:
      for (int64_t i = 0; i < n; ++i) {
        if (x[i] > 0.f) dx[i] += dy[i];
      }
      break;
    case Act::kTanh:
      for (int64_t i = 0; i < n; ++i) dx[i] += dy[i] * (1.f - y[i] * y[i]);
      break;
    case Act::kSigmoid:
      for (int64_t i = 0; i < n; ++i) dx[i] += dy[i] * y[i] * (1.f - y[i]);
      break;
  }
}

}  // namespace kernels
}  // namespace nn
}  // namespace turl
