#ifndef TURL_NN_KERNELS_GEMV_H_
#define TURL_NN_KERNELS_GEMV_H_

#include <cstdint>

namespace turl {
namespace nn {
namespace kernels {

/// Dedicated matrix-vector kernels for the skinny "logits" shapes
/// (1 x d_model x vocab and friends) where the 4x16 register tile of the
/// blocked GEMM is pessimal: a single output row leaves 3/4 of the tile's
/// accumulators idle and walks B in a cache-hostile 16-column stripe. GemvN
/// is the row-dot form (one k-dot per output element, streaming each matrix
/// row once); GemvT is the column-axpy form (streaming the matrix row by
/// row, the bandwidth-optimal order for B stored [k, n]).
///
/// Determinism contract (same as gemm.h): each output element's k-reduction
/// runs in ascending-k order with a fixed lane/accumulator structure, and
/// parallel execution partitions output panels whose boundaries depend only
/// on the problem shape — results are bitwise identical run-to-run and for
/// any TURL_KERNEL_THREADS.

/// y[i] (+)= dot(A[i, :], x) for i < m. A is m rows of k entries with row
/// stride lda; x has k entries, y has m.
void GemvN(int64_t m, int64_t k, const float* a, int64_t lda, const float* x,
           float* y, bool accumulate);

/// y[j] (+)= sum_t x[t * incx] * B[t, j] for j < n. B is k rows of n
/// entries with row stride ldb; incx addresses a strided x (a column of a
/// row-major matrix), y has n entries.
void GemvT(int64_t k, int64_t n, const float* b, int64_t ldb, const float* x,
           int64_t incx, float* y, bool accumulate);

/// Multi-row column-axpy behind the small-m GEMM dispatch (gemm.cc):
/// C[r, j] (+)= sum_t x[t * x_t + r * x_r] * B[t, j] for r < m (m <= 4).
/// One sweep over B serves all m output rows, so the m=2..4 micro-batch
/// shapes keep the single-pass B traffic of the m=1 case. GemmNN routes
/// here with (x=a, x_t=1, x_r=lda), GemmTN with (x=a, x_t=lda, x_r=1).
void GemvTMulti(int64_t m, int64_t n, int64_t k, const float* b, int64_t ldb,
                const float* x, int64_t x_t, int64_t x_r, float* c,
                int64_t ldc, bool accumulate);

/// Multi-x row-dot behind the small-m GemmNT dispatch (gemm.cc):
/// C[r, j] (+)= dot(X[r, :], B[j, :]) for r < m (m <= 4), X being m vectors
/// of k entries with row stride ldx and B n rows with row stride ldb. One
/// sweep over B serves all m output rows. Each dot runs the exact GemvN
/// per-row chain, so the result is bitwise identical to m separate GemvN
/// calls — the fusion only changes B traffic, not arithmetic order.
void GemvNMulti(int64_t m, int64_t n, int64_t k, const float* b, int64_t ldb,
                const float* x, int64_t ldx, float* c, int64_t ldc,
                bool accumulate);

/// Reference scalar loops, compiled without the kernel SIMD flags
/// (naive.cc), as the equivalence oracle and bench baseline.
namespace naive {
void GemvN(int64_t m, int64_t k, const float* a, int64_t lda, const float* x,
           float* y, bool accumulate);
void GemvT(int64_t k, int64_t n, const float* b, int64_t ldb, const float* x,
           int64_t incx, float* y, bool accumulate);
}  // namespace naive

}  // namespace kernels
}  // namespace nn
}  // namespace turl

#endif  // TURL_NN_KERNELS_GEMV_H_
