#ifndef TURL_NN_KERNELS_THREADING_H_
#define TURL_NN_KERNELS_THREADING_H_

#include <cstdint>
#include <functional>

namespace turl {
namespace nn {
namespace kernels {

/// Intra-op parallelism for the compute kernels, backed by one shared
/// turl::rt::ThreadPool that is built lazily on first eligible call.
///
/// Thread count resolution: SetKernelThreads() wins; otherwise
/// $TURL_KERNEL_THREADS (when set and positive); otherwise
/// std::thread::hardware_concurrency(). A count of 1 never constructs the
/// pool — every kernel runs inline on the caller.
int KernelThreads();

/// Overrides the kernel thread count (and rebuilds the pool on next use).
/// n <= 0 re-resolves from the environment.
void SetKernelThreads(int n);

/// Minimum mul-add count before a kernel is allowed to go parallel; below
/// it the panel loop runs inline so fine-tune micro-batches never pay pool
/// hand-off latency.
int64_t ParallelMinFlops();

/// Test hook: forces the parallel gate (0 restores the default).
void SetParallelMinFlopsForTest(int64_t flops);

/// Runs body(p) for every panel p in [0, panels). Executes on the shared
/// pool only when panels >= 2, KernelThreads() > 1 and flops >=
/// ParallelMinFlops(); otherwise inline, in ascending panel order. Bodies
/// must write disjoint output panels; kernels built on this are bitwise
/// deterministic for any thread count because panel boundaries depend only
/// on the problem shape.
void ParallelPanels(int64_t panels, int64_t flops,
                    const std::function<void(int64_t)>& body);

}  // namespace kernels
}  // namespace nn
}  // namespace turl

#endif  // TURL_NN_KERNELS_THREADING_H_
