#include "nn/kernels/threading.h"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "rt/thread_pool.h"

namespace turl {
namespace nn {
namespace kernels {

namespace {

// ~2M mul-adds: a 128x128x128 GEMM stays inline, 160^3 and up may fan out.
constexpr int64_t kDefaultParallelMinFlops = int64_t(1) << 21;

std::mutex g_mu;
std::unique_ptr<rt::ThreadPool> g_pool;
int g_threads = 0;  // 0 = not yet resolved.
int64_t g_min_flops_override = 0;

int ResolveFromEnv() {
  if (const char* env = std::getenv("TURL_KERNEL_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int ThreadsLocked() {
  if (g_threads == 0) g_threads = ResolveFromEnv();
  return g_threads;
}

}  // namespace

int KernelThreads() {
  std::lock_guard<std::mutex> lock(g_mu);
  return ThreadsLocked();
}

void SetKernelThreads(int n) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_pool.reset();
  g_threads = n > 0 ? n : ResolveFromEnv();
}

int64_t ParallelMinFlops() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_min_flops_override > 0 ? g_min_flops_override
                                  : kDefaultParallelMinFlops;
}

void SetParallelMinFlopsForTest(int64_t flops) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_min_flops_override = flops;
}

void ParallelPanels(int64_t panels, int64_t flops,
                    const std::function<void(int64_t)>& body) {
  rt::ThreadPool* pool = nullptr;
  if (panels >= 2) {
    std::lock_guard<std::mutex> lock(g_mu);
    const int64_t min_flops = g_min_flops_override > 0
                                  ? g_min_flops_override
                                  : kDefaultParallelMinFlops;
    if (flops >= min_flops && ThreadsLocked() > 1) {
      if (!g_pool) g_pool = std::make_unique<rt::ThreadPool>(g_threads);
      pool = g_pool.get();
    }
  }
  if (pool == nullptr) {
    for (int64_t p = 0; p < panels; ++p) body(p);
    return;
  }
  pool->ParallelFor(0, panels, /*grain=*/1, body);
}

}  // namespace kernels
}  // namespace nn
}  // namespace turl
