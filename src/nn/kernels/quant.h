#ifndef TURL_NN_KERNELS_QUANT_H_
#define TURL_NN_KERNELS_QUANT_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace turl {
namespace nn {
namespace kernels {

/// Per-row symmetric int8 weight quantization for the scoring matmuls
/// (vocab/entity/label embedding tables scored against one projected
/// hidden row). Each weight row i is stored as int8 with its own scale
/// scales[i] = max|row i| / 127 (zero-point free), the activation vector is
/// quantized symmetrically per call, and the dot products accumulate in
/// int32 — exactly, with no rounding — before one float rescale
/// y[i] = float(acc) * (scales[i] * x_scale).
///
/// Accuracy contract: quantization error is bounded per element by half a
/// quantization step on each side (|w - s_w q_w| <= s_w / 2), so scores
/// degrade by O(k * s_w * s_x) worst case and far less for random-sign
/// rows; the scalar naive:: mirror is the oracle and — because integer
/// accumulation is order-independent and exact — matches the SIMD path
/// BITWISE, a stronger guarantee than the fp32 kernels can offer.
///
/// Determinism contract: same as gemm.h/gemv.h — panel-parallel over whole
/// rows, bitwise identical run-to-run and for any thread count (trivially
/// so, by integer exactness).
struct QuantizedMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t stride = 0;        ///< cols rounded up to 32; tail bytes are zero.
  std::vector<int8_t> data;  ///< rows * stride, row-major.
  std::vector<float> scales; ///< Per-row dequantization scale, max|row|/127.

  bool empty() const { return rows == 0; }
};

/// Packs `rows` weight rows of `cols` entries, element (i, j) read from
/// w[i * row_stride + j * col_stride]. Row-major matrices pass
/// (row_stride=ld, col_stride=1); a Linear weight [in, out] scored
/// per-output-unit passes (row_stride=1, col_stride=out).
QuantizedMatrix QuantizeRows(const float* w, int64_t rows, int64_t cols,
                             int64_t row_stride, int64_t col_stride);

/// Quantizes activation x[0..n) symmetrically into out[0..stride) (tail
/// zeroed; stride must be >= n and a multiple of 32 for the SIMD path).
/// Returns the dequantization scale max|x|/127 (0 for an all-zero x).
float QuantizeActivation(const float* x, int64_t n, int64_t stride,
                         int8_t* out);

/// y[i] (+)= rescaled int8 dot of w row i against xq for every row.
/// xq must hold w.stride bytes quantized with QuantizeActivation.
void QuantizedGemv(const QuantizedMatrix& w, const int8_t* xq, float x_scale,
                   float* y, bool accumulate);

/// Row-subset form: y[r] (+)= rescaled dot of w row rows[r], r < num_rows
/// (the MER candidate-set shape). Row ids may repeat and appear in any
/// order.
void QuantizedGemvRows(const QuantizedMatrix& w, const int* rows,
                       int64_t num_rows, const int8_t* xq, float x_scale,
                       float* y, bool accumulate);

/// Quantize-and-score conveniences: x is the fp32 activation (w.cols
/// entries); y gets w.rows (resp. num_rows) scores.
void QuantizedScore(const QuantizedMatrix& w, const float* x, float* y);
void QuantizedScoreRows(const QuantizedMatrix& w, const int* rows,
                        int64_t num_rows, const float* x, float* y);

/// Scalar mirrors (same TU; integer accumulation makes them bitwise equal
/// to the SIMD path regardless of compile flags) — the accuracy oracle.
namespace naive {
void QuantizedGemv(const QuantizedMatrix& w, const int8_t* xq, float x_scale,
                   float* y, bool accumulate);
void QuantizedGemvRows(const QuantizedMatrix& w, const int* rows,
                       int64_t num_rows, const int8_t* xq, float x_scale,
                       float* y, bool accumulate);
}  // namespace naive

/// Lazily built, mutex-guarded quantized view of a weight matrix that task
/// heads and the model cache per parameter tensor. Get() packs on first use
/// (or after Invalidate) and returns a reference that stays valid until the
/// next Invalidate — callers must not invalidate concurrently with scoring
/// (in practice: invalidate at checkpoint-load/finetune boundaries, before
/// serving resumes).
class QuantCache {
 public:
  const QuantizedMatrix& Get(const float* w, int64_t rows, int64_t cols,
                             int64_t row_stride, int64_t col_stride);
  void Invalidate();

 private:
  std::mutex mu_;
  QuantizedMatrix m_;
};

/// The TURL_QUANT_SCORING=0/1 gate (default off). SetQuantScoringForTest
/// overrides it process-wide: 1 forces on, 0 forces off, -1 re-reads the
/// environment on next query.
bool QuantScoringEnabled();
void SetQuantScoringForTest(int v);

}  // namespace kernels
}  // namespace nn
}  // namespace turl

#endif  // TURL_NN_KERNELS_QUANT_H_
