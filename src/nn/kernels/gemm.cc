#include "nn/kernels/gemm.h"

#include <algorithm>
#include <atomic>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include "nn/kernels/gemv.h"
#include "nn/kernels/threading.h"
#include "obs/profiler.h"

namespace turl {
namespace nn {
namespace kernels {

namespace {

// Register tile: kMR C-rows x kNR C-columns accumulate in registers across
// the whole k loop (8 YMM accumulators under AVX2). Parallel panels are
// multiples of the tile edge so the blocking phase — and therefore the
// exact FP operation sequence per element — is identical no matter how the
// panel range is split across threads.
constexpr int kMR = 4;
constexpr int64_t kNR = 16;
constexpr int64_t kRowPanel = 64;   // multiple of kMR
constexpr int64_t kColPanel = 256;  // multiple of kNR and of the NT j-tile

/// Updates the R x nb tile at c (row stride ldc) with
///   c[r][j] (+)= sum_{t<kc} s[t*s_t + r*s_r] * v[t*v_t + j].
/// Instantiated by GemmNN (s walks a row of A: s_t=1, s_r=lda) and GemmTN
/// (s walks a column block of A': s_t=lda, s_r=1). The t loop is the
/// k-reduction: strictly ascending, one scalar fma per (element, t), so the
/// per-element rounding sequence is fixed.
template <int R>
void MicroTile(int64_t kc, const float* s, int64_t s_t, int64_t s_r,
               const float* v, int64_t v_t, int64_t nb, float* c, int64_t ldc,
               bool accumulate) {
#if defined(__AVX2__) && defined(__FMA__)
  // Full-width 4x16 tile: 8 individually named YMM accumulators (arrays of
  // __m256 get spilled to the stack by gcc, which costs ~5x) live in
  // registers across the whole k loop. The fused mul-adds follow the same
  // ascending-k per-element order as the portable loop below.
  if (R == 4 && nb == kNR) {
    __m256 l0 = _mm256_setzero_ps(), h0 = _mm256_setzero_ps();
    __m256 l1 = _mm256_setzero_ps(), h1 = _mm256_setzero_ps();
    __m256 l2 = _mm256_setzero_ps(), h2 = _mm256_setzero_ps();
    __m256 l3 = _mm256_setzero_ps(), h3 = _mm256_setzero_ps();
    for (int64_t t = 0; t < kc; ++t) {
      const float* vt = v + t * v_t;
      const __m256 v0 = _mm256_loadu_ps(vt);
      const __m256 v1 = _mm256_loadu_ps(vt + 8);
      const float* st = s + t * s_t;
      __m256 sv = _mm256_broadcast_ss(st);
      l0 = _mm256_fmadd_ps(sv, v0, l0);
      h0 = _mm256_fmadd_ps(sv, v1, h0);
      sv = _mm256_broadcast_ss(st + s_r);
      l1 = _mm256_fmadd_ps(sv, v0, l1);
      h1 = _mm256_fmadd_ps(sv, v1, h1);
      sv = _mm256_broadcast_ss(st + 2 * s_r);
      l2 = _mm256_fmadd_ps(sv, v0, l2);
      h2 = _mm256_fmadd_ps(sv, v1, h2);
      sv = _mm256_broadcast_ss(st + 3 * s_r);
      l3 = _mm256_fmadd_ps(sv, v0, l3);
      h3 = _mm256_fmadd_ps(sv, v1, h3);
    }
    const __m256 lo[4] = {l0, l1, l2, l3};
    const __m256 hi[4] = {h0, h1, h2, h3};
    for (int r = 0; r < 4; ++r) {
      float* crow = c + r * ldc;
      if (accumulate) {
        _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), lo[r]));
        _mm256_storeu_ps(crow + 8,
                         _mm256_add_ps(_mm256_loadu_ps(crow + 8), hi[r]));
      } else {
        _mm256_storeu_ps(crow, lo[r]);
        _mm256_storeu_ps(crow + 8, hi[r]);
      }
    }
    return;
  }
  // Single-row full-width tile (GEMV-shaped callers, m % 4 == 1 tails).
  if (R == 1 && nb == kNR) {
    __m256 l0 = _mm256_setzero_ps(), h0 = _mm256_setzero_ps();
    for (int64_t t = 0; t < kc; ++t) {
      const float* vt = v + t * v_t;
      const __m256 sv = _mm256_broadcast_ss(s + t * s_t);
      l0 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(vt), l0);
      h0 = _mm256_fmadd_ps(sv, _mm256_loadu_ps(vt + 8), h0);
    }
    if (accumulate) {
      _mm256_storeu_ps(c, _mm256_add_ps(_mm256_loadu_ps(c), l0));
      _mm256_storeu_ps(c + 8, _mm256_add_ps(_mm256_loadu_ps(c + 8), h0));
    } else {
      _mm256_storeu_ps(c, l0);
      _mm256_storeu_ps(c + 8, h0);
    }
    return;
  }
#endif
  float acc[R][kNR] = {};
  if (nb == kNR) {
    for (int64_t t = 0; t < kc; ++t) {
      const float* vt = v + t * v_t;
      const float* st = s + t * s_t;
      for (int r = 0; r < R; ++r) {
        const float sv = st[r * s_r];
        float* ar = acc[r];
        for (int64_t j = 0; j < kNR; ++j) ar[j] += sv * vt[j];
      }
    }
  } else {
    for (int64_t t = 0; t < kc; ++t) {
      const float* vt = v + t * v_t;
      const float* st = s + t * s_t;
      for (int r = 0; r < R; ++r) {
        const float sv = st[r * s_r];
        float* ar = acc[r];
        for (int64_t j = 0; j < nb; ++j) ar[j] += sv * vt[j];
      }
    }
  }
  for (int r = 0; r < R; ++r) {
    float* crow = c + r * ldc;
    const float* ar = acc[r];
    if (accumulate) {
      for (int64_t j = 0; j < nb; ++j) crow[j] += ar[j];
    } else {
      for (int64_t j = 0; j < nb; ++j) crow[j] = ar[j];
    }
  }
}

/// Rows [i0,i1) x columns [j0,j1) of the scalar-stream GEMM shared by NN
/// and TN. `a_row` is the stride from one C row to the next inside A
/// (lda for NN, 1 for TN).
void ScalarStreamPanel(int64_t i0, int64_t i1, int64_t j0, int64_t j1,
                       int64_t k, const float* a, int64_t a_row, int64_t s_t,
                       int64_t s_r, const float* b, int64_t ldb, float* c,
                       int64_t ldc, bool accumulate) {
  for (int64_t i = i0; i < i1; i += kMR) {
    const int rows = static_cast<int>(std::min<int64_t>(kMR, i1 - i));
    const float* s = a + i * a_row;
    float* crow = c + i * ldc;
    for (int64_t j = j0; j < j1; j += kNR) {
      const int64_t nb = std::min<int64_t>(kNR, j1 - j);
      switch (rows) {
        case 4:
          MicroTile<4>(k, s, s_t, s_r, b + j, ldb, nb, crow + j, ldc,
                       accumulate);
          break;
        case 3:
          MicroTile<3>(k, s, s_t, s_r, b + j, ldb, nb, crow + j, ldc,
                       accumulate);
          break;
        case 2:
          MicroTile<2>(k, s, s_t, s_r, b + j, ldb, nb, crow + j, ldc,
                       accumulate);
          break;
        default:
          MicroTile<1>(k, s, s_t, s_r, b + j, ldb, nb, crow + j, ldc,
                       accumulate);
          break;
      }
    }
  }
}

/// Partitions the scalar-stream GEMM into parallel panels: by row panels
/// when there are at least two, otherwise by column panels (the m=1 shapes
/// of the task-head logits). The choice depends only on (m, n), never on
/// the thread count, so partitioning cannot perturb results.
void ScalarStreamGemm(int64_t m, int64_t n, int64_t k, const float* a,
                      int64_t a_row, int64_t s_t, int64_t s_r, const float* b,
                      int64_t ldb, float* c, int64_t ldc, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      for (int64_t i = 0; i < m; ++i) std::fill(c + i * ldc, c + i * ldc + n, 0.f);
    }
    return;
  }
  const int64_t flops = m * n * k;
  const int64_t row_panels = (m + kRowPanel - 1) / kRowPanel;
  if (row_panels >= 2 || n <= kColPanel) {
    ParallelPanels(row_panels, flops, [&](int64_t p) {
      const int64_t i0 = p * kRowPanel;
      const int64_t i1 = std::min<int64_t>(m, i0 + kRowPanel);
      ScalarStreamPanel(i0, i1, 0, n, k, a, a_row, s_t, s_r, b, ldb, c, ldc,
                        accumulate);
    });
  } else {
    const int64_t col_panels = (n + kColPanel - 1) / kColPanel;
    ParallelPanels(col_panels, flops, [&](int64_t p) {
      const int64_t j0 = p * kColPanel;
      const int64_t j1 = std::min<int64_t>(n, j0 + kColPanel);
      ScalarStreamPanel(0, m, j0, j1, k, a, a_row, s_t, s_r, b, ldb, c, ldc,
                        accumulate);
    });
  }
}

/// JB simultaneous k-dots of one A row against JB consecutive B rows.
/// Every dot owns an 8-lane accumulator filled in ascending-k order (tail
/// elements land on lane t%8, matching the vector body) and reduced with a
/// fixed tree, so the per-element result is independent of JB and of how
/// the (i, j) space is partitioned.
template <int JB>
void DotTile(int64_t k, const float* a, const float* b, int64_t ldb,
             float* out, bool accumulate) {
  constexpr int kLanes = 8;
  float acc[JB][kLanes] = {};
  const int64_t k8 = k - (k % kLanes);
#if defined(__AVX2__) && defined(__FMA__)
  if (JB == 4) {
    // Named accumulators (see MicroTile) for the 4-dot tile.
    __m256 q0 = _mm256_setzero_ps(), q1 = _mm256_setzero_ps();
    __m256 q2 = _mm256_setzero_ps(), q3 = _mm256_setzero_ps();
    for (int64_t t = 0; t < k8; t += kLanes) {
      const __m256 av = _mm256_loadu_ps(a + t);
      q0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + t), q0);
      q1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + ldb + t), q1);
      q2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + 2 * ldb + t), q2);
      q3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b + 3 * ldb + t), q3);
    }
    _mm256_storeu_ps(acc[0 % JB], q0);
    _mm256_storeu_ps(acc[1 % JB], q1);
    _mm256_storeu_ps(acc[2 % JB], q2);
    _mm256_storeu_ps(acc[3 % JB], q3);
  } else {
    __m256 vacc = _mm256_setzero_ps();
    for (int64_t t = 0; t < k8; t += kLanes) {
      vacc = _mm256_fmadd_ps(_mm256_loadu_ps(a + t), _mm256_loadu_ps(b + t),
                             vacc);
    }
    _mm256_storeu_ps(acc[0], vacc);
  }
#else
  for (int64_t t = 0; t < k8; t += kLanes) {
    for (int jb = 0; jb < JB; ++jb) {
      const float* brow = b + jb * ldb + t;
      float* ar = acc[jb];
      for (int l = 0; l < kLanes; ++l) ar[l] += a[t + l] * brow[l];
    }
  }
#endif
  for (int64_t t = k8; t < k; ++t) {
    for (int jb = 0; jb < JB; ++jb) {
      acc[jb][t - k8] += a[t] * b[jb * ldb + t];
    }
  }
  for (int jb = 0; jb < JB; ++jb) {
    const float* ar = acc[jb];
    const float r0 = ar[0] + ar[4];
    const float r1 = ar[1] + ar[5];
    const float r2 = ar[2] + ar[6];
    const float r3 = ar[3] + ar[7];
    const float sum = (r0 + r2) + (r1 + r3);
    if (accumulate) {
      out[jb] += sum;
    } else {
      out[jb] = sum;
    }
  }
}

constexpr int64_t kNTJTile = 4;

void GemmNTPanel(int64_t i0, int64_t i1, int64_t j0, int64_t j1, int64_t k,
                 const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* c, int64_t ldc, bool accumulate) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    int64_t j = j0;
    for (; j + kNTJTile <= j1; j += kNTJTile) {
      DotTile<4>(k, arow, b + j * ldb, ldb, crow + j, accumulate);
    }
    for (; j < j1; ++j) {
      DotTile<1>(k, arow, b + j * ldb, ldb, crow + j, accumulate);
    }
  }
}

// Shapes up to this many output rows bypass the tile machinery for the
// GEMV layer: the 4x16 tile needs >= kMR rows to fill its accumulators,
// and its 16-column stripes walk B with a full-row stride — pessimal
// exactly for the 1 x d_model x vocab logits shapes.
constexpr int64_t kSmallMGemv = 4;

std::atomic<bool> g_small_m_gemv{true};

}  // namespace

void SetSmallMGemvDispatch(bool enabled) {
  g_small_m_gemv.store(enabled, std::memory_order_relaxed);
}

bool SmallMGemvDispatch() {
  return g_small_m_gemv.load(std::memory_order_relaxed);
}

void GemmNN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
            const float* b, int64_t ldb, float* c, int64_t ldc,
            bool accumulate) {
  if (m >= 1 && m <= kSmallMGemv && SmallMGemvDispatch()) {
    // Row r of C consumes row r of A: x[r][t] = a[r * lda + t].
    GemvTMulti(m, n, k, b, ldb, a, /*x_t=*/1, /*x_r=*/lda, c, ldc, accumulate);
    return;
  }
  TURL_PROFILE_SCOPE("kernel.gemm");
  ScalarStreamGemm(m, n, k, a, /*a_row=*/lda, /*s_t=*/1, /*s_r=*/lda, b, ldb,
                   c, ldc, accumulate);
}

void GemmTN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
            const float* b, int64_t ldb, float* c, int64_t ldc,
            bool accumulate) {
  if (m >= 1 && m <= kSmallMGemv && SmallMGemvDispatch()) {
    // Row r of C consumes column r of A': x[r][t] = a[t * lda + r].
    GemvTMulti(m, n, k, b, ldb, a, /*x_t=*/lda, /*x_r=*/1, c, ldc, accumulate);
    return;
  }
  TURL_PROFILE_SCOPE("kernel.gemm");
  ScalarStreamGemm(m, n, k, a, /*a_row=*/1, /*s_t=*/lda, /*s_r=*/1, b, ldb, c,
                   ldc, accumulate);
}

void GemmNT(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
            const float* b, int64_t ldb, float* c, int64_t ldc,
            bool accumulate) {
  if (m >= 1 && m <= kSmallMGemv && SmallMGemvDispatch() && k > 0) {
    // Row i of C is row i of A dotted against every row of B — GemvN with
    // the roles swapped (B supplies the matrix, A rows the vectors). The
    // fused form streams B once for all m rows; per-dot arithmetic is
    // bitwise identical to m separate GemvN calls.
    GemvNMulti(m, n, k, b, ldb, a, lda, c, ldc, accumulate);
    return;
  }
  TURL_PROFILE_SCOPE("kernel.gemm");
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      for (int64_t i = 0; i < m; ++i) std::fill(c + i * ldc, c + i * ldc + n, 0.f);
    }
    return;
  }
  const int64_t flops = m * n * k;
  const int64_t row_panels = (m + kRowPanel - 1) / kRowPanel;
  if (row_panels >= 2 || n <= kColPanel) {
    ParallelPanels(row_panels, flops, [&](int64_t p) {
      const int64_t i0 = p * kRowPanel;
      const int64_t i1 = std::min<int64_t>(m, i0 + kRowPanel);
      GemmNTPanel(i0, i1, 0, n, k, a, lda, b, ldb, c, ldc, accumulate);
    });
  } else {
    const int64_t col_panels = (n + kColPanel - 1) / kColPanel;
    ParallelPanels(col_panels, flops, [&](int64_t p) {
      const int64_t j0 = p * kColPanel;
      const int64_t j1 = std::min<int64_t>(n, j0 + kColPanel);
      GemmNTPanel(0, m, j0, j1, k, a, lda, b, ldb, c, ldc, accumulate);
    });
  }
}

}  // namespace kernels
}  // namespace nn
}  // namespace turl
