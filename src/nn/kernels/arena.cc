#include "nn/kernels/arena.h"

#include <cstring>
#include <unordered_map>

#include "obs/metrics.h"

namespace turl {
namespace nn {
namespace kernels {

namespace {

constexpr std::size_t kMaxFreePerClass = 16;
constexpr std::size_t kMaxCachedBytes = std::size_t(64) << 20;  // per thread

thread_local int tls_arena_depth = 0;

// Set by ~Cache so buffers dying during thread teardown (after the
// thread-local pool is gone) fall back to plain deallocation. A plain bool
// is trivially destructible, so reading it after the Cache destructor ran
// is well-defined.
thread_local bool tls_cache_dead = false;

struct Cache {
  // Exact-size freelists: intermediate shapes repeat exactly across steps.
  std::unordered_map<std::size_t, std::vector<std::vector<float>>> classes;
  std::size_t cached_bytes = 0;
  ~Cache() { tls_cache_dead = true; }
};

Cache& ThreadCache() {
  thread_local Cache cache;
  return cache;
}

obs::Counter* ReuseCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("nn.arena_reuse");
  return c;
}

obs::Counter* HeapAllocCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Get().GetCounter("nn.heap_alloc");
  return c;
}

}  // namespace

ArenaScope::ArenaScope() { ++tls_arena_depth; }
ArenaScope::~ArenaScope() { --tls_arena_depth; }

bool ArenaActive() { return tls_arena_depth > 0; }

std::vector<float> LeasePooled(std::size_t n, bool zero) {
  if (n > 0 && !tls_cache_dead) {
    Cache& cache = ThreadCache();
    auto it = cache.classes.find(n);
    if (it != cache.classes.end() && !it->second.empty()) {
      std::vector<float> buf = std::move(it->second.back());
      it->second.pop_back();
      cache.cached_bytes -= n * sizeof(float);
      ReuseCounter()->Inc();
      if (zero) std::memset(buf.data(), 0, n * sizeof(float));
      return buf;
    }
  }
  HeapAllocCounter()->Inc();
  return std::vector<float>(n);
}

std::vector<float> AllocBuffer(std::size_t n, bool zero) {
  if (ArenaActive()) return LeasePooled(n, zero);
  HeapAllocCounter()->Inc();
  return std::vector<float>(n);
}

void RecycleBuffer(std::vector<float>&& buf) {
  const std::size_t n = buf.size();
  if (n == 0 || tls_cache_dead) return;
  Cache& cache = ThreadCache();
  if (cache.cached_bytes + n * sizeof(float) > kMaxCachedBytes) return;
  std::vector<std::vector<float>>& cls = cache.classes[n];
  if (cls.size() >= kMaxFreePerClass) return;
  // Drop any spare capacity bookkeeping mismatch: freelists are keyed by
  // size(), and a reused buffer is handed back at exactly that size.
  cls.push_back(std::move(buf));
  cache.cached_bytes += n * sizeof(float);
}

void ClearThreadBufferPool() {
  if (tls_cache_dead) return;
  Cache& cache = ThreadCache();
  cache.classes.clear();
  cache.cached_bytes = 0;
}

}  // namespace kernels
}  // namespace nn
}  // namespace turl
