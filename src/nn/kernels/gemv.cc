#include "nn/kernels/gemv.h"

#include <algorithm>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include "nn/kernels/threading.h"
#include "obs/profiler.h"

namespace turl {
namespace nn {
namespace kernels {

namespace {

// Parallel panel edges. GemvN rows are whole dot products, GemvT columns
// are whole ascending-k chains, so any panel split preserves the
// per-element operation sequence; the sizes only bound scheduling
// granularity. kGemvRowPanel is a multiple of the 4-row dot group so a
// panel boundary never changes how rows group into Dot4Rows calls.
constexpr int64_t kGemvRowPanel = 256;
constexpr int64_t kGemvColPanel = 512;

/// R simultaneous k-dots of R consecutive A rows against the shared x.
/// Mirrors DotTile in gemm.cc: each dot owns an 8-lane accumulator filled
/// in ascending-k order (tail elements land on lane t%8) and reduced with a
/// fixed tree, so the result per row is independent of R and of the panel
/// split. Under AVX2 the R==4 body keeps 4 named YMM accumulators live
/// across the whole k loop and shares each x load between them.
template <int R>
void DotRows(int64_t k, const float* a, int64_t lda, const float* x, float* y,
             bool accumulate) {
  constexpr int kLanes = 8;
  float acc[R][kLanes] = {};
  const int64_t k8 = k - (k % kLanes);
#if defined(__AVX2__) && defined(__FMA__)
  if (R == 4) {
    __m256 q0 = _mm256_setzero_ps(), q1 = _mm256_setzero_ps();
    __m256 q2 = _mm256_setzero_ps(), q3 = _mm256_setzero_ps();
    for (int64_t t = 0; t < k8; t += kLanes) {
      const __m256 xv = _mm256_loadu_ps(x + t);
      q0 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(a + t), q0);
      q1 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(a + lda + t), q1);
      q2 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(a + 2 * lda + t), q2);
      q3 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(a + 3 * lda + t), q3);
    }
    _mm256_storeu_ps(acc[0 % R], q0);
    _mm256_storeu_ps(acc[1 % R], q1);
    _mm256_storeu_ps(acc[2 % R], q2);
    _mm256_storeu_ps(acc[3 % R], q3);
  } else {
    // R < 4: one accumulator per row, shared x load. Each row's chain is
    // the same as in the R == 4 body, so grouping never changes results.
    __m256 vacc[R];
    for (int r = 0; r < R; ++r) vacc[r] = _mm256_setzero_ps();
    for (int64_t t = 0; t < k8; t += kLanes) {
      const __m256 xv = _mm256_loadu_ps(x + t);
      for (int r = 0; r < R; ++r) {
        vacc[r] = _mm256_fmadd_ps(xv, _mm256_loadu_ps(a + r * lda + t),
                                  vacc[r]);
      }
    }
    for (int r = 0; r < R; ++r) _mm256_storeu_ps(acc[r], vacc[r]);
  }
#else
  for (int64_t t = 0; t < k8; t += kLanes) {
    for (int r = 0; r < R; ++r) {
      const float* arow = a + r * lda + t;
      float* ar = acc[r];
      for (int l = 0; l < kLanes; ++l) ar[l] += x[t + l] * arow[l];
    }
  }
#endif
  for (int64_t t = k8; t < k; ++t) {
    for (int r = 0; r < R; ++r) acc[r][t - k8] += x[t] * a[r * lda + t];
  }
  for (int r = 0; r < R; ++r) {
    const float* ar = acc[r];
    const float r0 = ar[0] + ar[4];
    const float r1 = ar[1] + ar[5];
    const float r2 = ar[2] + ar[6];
    const float r3 = ar[3] + ar[7];
    const float sum = (r0 + r2) + (r1 + r3);
    if (accumulate) {
      y[r] += sum;
    } else {
      y[r] = sum;
    }
  }
}

void GemvNPanel(int64_t i0, int64_t i1, int64_t k, const float* a, int64_t lda,
                const float* x, float* y, bool accumulate) {
  int64_t i = i0;
  for (; i + 4 <= i1; i += 4) {
    DotRows<4>(k, a + i * lda, lda, x, y + i, accumulate);
  }
  for (; i < i1; ++i) {
    DotRows<1>(k, a + i * lda, lda, x, y + i, accumulate);
  }
}

/// Column-axpy over the panel [j0, j1) for R output rows: every C element
/// accumulates its own strictly ascending-k FMA chain, with B streamed row
/// by row exactly once for all R rows together. C panels stay L1-resident
/// across the k sweep (kGemvColPanel * R floats), so the read-modify-write
/// per step is cheap and B's streaming reads set the pace.
template <int R>
void GemvTPanel(int64_t j0, int64_t j1, int64_t k, const float* b, int64_t ldb,
                const float* x, int64_t x_t, int64_t x_r, float* c,
                int64_t ldc, bool accumulate) {
  if (!accumulate) {
    for (int r = 0; r < R; ++r) std::fill(c + r * ldc + j0, c + r * ldc + j1, 0.f);
  }
  const int64_t width = j1 - j0;
  const int64_t w8 = width - (width % 8);
#if defined(__AVX2__) && defined(__FMA__)
  for (int64_t t = 0; t < k; ++t) {
    const float* bt = b + t * ldb + j0;
    const float* xt = x + t * x_t;
    for (int r = 0; r < R; ++r) {
      const __m256 xv = _mm256_broadcast_ss(xt + r * x_r);
      float* crow = c + r * ldc + j0;
      int64_t j = 0;
      for (; j < w8; j += 8) {
        _mm256_storeu_ps(
            crow + j,
            _mm256_fmadd_ps(xv, _mm256_loadu_ps(bt + j),
                            _mm256_loadu_ps(crow + j)));
      }
      const float xs = xt[r * x_r];
      for (; j < width; ++j) crow[j] += xs * bt[j];
    }
  }
#else
  for (int64_t t = 0; t < k; ++t) {
    const float* bt = b + t * ldb + j0;
    const float* xt = x + t * x_t;
    for (int r = 0; r < R; ++r) {
      const float xs = xt[r * x_r];
      float* crow = c + r * ldc + j0;
      for (int64_t j = 0; j < width; ++j) crow[j] += xs * bt[j];
    }
  }
  (void)w8;
#endif
}

using GemvTPanelFn = void (*)(int64_t, int64_t, int64_t, const float*, int64_t,
                              const float*, int64_t, int64_t, float*, int64_t,
                              bool);

GemvTPanelFn GemvTPanelFor(int64_t m) {
  switch (m) {
    case 4:
      return &GemvTPanel<4>;
    case 3:
      return &GemvTPanel<3>;
    case 2:
      return &GemvTPanel<2>;
    default:
      return &GemvTPanel<1>;
  }
}

/// Row-dot panel for R x-vectors against B rows [j0, j1): per B row one
/// DotRows call with the roles swapped (the R x-vectors are the "rows", the
/// B row is the shared operand). FMA and float multiply are commutative in
/// their product operands, so each dot's chain is bit-identical to the
/// corresponding single-x GemvN dot.
template <int R>
void GemvNMultiPanel(int64_t j0, int64_t j1, int64_t k, const float* b,
                     int64_t ldb, const float* x, int64_t ldx, float* c,
                     int64_t ldc, bool accumulate) {
  for (int64_t j = j0; j < j1; ++j) {
    float tmp[R];
    DotRows<R>(k, x, ldx, b + j * ldb, tmp, false);
    for (int r = 0; r < R; ++r) {
      float* out = c + r * ldc + j;
      if (accumulate) {
        *out += tmp[r];
      } else {
        *out = tmp[r];
      }
    }
  }
}

using GemvNMultiPanelFn = void (*)(int64_t, int64_t, int64_t, const float*,
                                   int64_t, const float*, int64_t, float*,
                                   int64_t, bool);

GemvNMultiPanelFn GemvNMultiPanelFor(int64_t m) {
  switch (m) {
    case 4:
      return &GemvNMultiPanel<4>;
    case 3:
      return &GemvNMultiPanel<3>;
    case 2:
      return &GemvNMultiPanel<2>;
    default:
      return &GemvNMultiPanel<1>;
  }
}

}  // namespace

void GemvN(int64_t m, int64_t k, const float* a, int64_t lda, const float* x,
           float* y, bool accumulate) {
  TURL_PROFILE_SCOPE("kernel.gemv");
  if (m <= 0) return;
  if (k <= 0) {
    if (!accumulate) std::fill(y, y + m, 0.f);
    return;
  }
  const int64_t panels = (m + kGemvRowPanel - 1) / kGemvRowPanel;
  ParallelPanels(panels, m * k, [&](int64_t p) {
    const int64_t i0 = p * kGemvRowPanel;
    const int64_t i1 = std::min<int64_t>(m, i0 + kGemvRowPanel);
    GemvNPanel(i0, i1, k, a, lda, x, y, accumulate);
  });
}

void GemvTMulti(int64_t m, int64_t n, int64_t k, const float* b, int64_t ldb,
                const float* x, int64_t x_t, int64_t x_r, float* c,
                int64_t ldc, bool accumulate) {
  TURL_PROFILE_SCOPE("kernel.gemv");
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      for (int64_t r = 0; r < m; ++r) std::fill(c + r * ldc, c + r * ldc + n, 0.f);
    }
    return;
  }
  const GemvTPanelFn panel = GemvTPanelFor(m);
  const int64_t panels = (n + kGemvColPanel - 1) / kGemvColPanel;
  ParallelPanels(panels, m * n * k, [&](int64_t p) {
    const int64_t j0 = p * kGemvColPanel;
    const int64_t j1 = std::min<int64_t>(n, j0 + kGemvColPanel);
    panel(j0, j1, k, b, ldb, x, x_t, x_r, c, ldc, accumulate);
  });
}

void GemvT(int64_t k, int64_t n, const float* b, int64_t ldb, const float* x,
           int64_t incx, float* y, bool accumulate) {
  GemvTMulti(1, n, k, b, ldb, x, /*x_t=*/incx, /*x_r=*/0, y, /*ldc=*/0,
             accumulate);
}

void GemvNMulti(int64_t m, int64_t n, int64_t k, const float* b, int64_t ldb,
                const float* x, int64_t ldx, float* c, int64_t ldc,
                bool accumulate) {
  TURL_PROFILE_SCOPE("kernel.gemv");
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate) {
      for (int64_t r = 0; r < m; ++r) std::fill(c + r * ldc, c + r * ldc + n, 0.f);
    }
    return;
  }
  if (m == 1) {
    // A single x-vector gains nothing from the fused sweep, but GemvN's
    // 4-row grouping of B does share each x load across 4 dots.
    GemvN(n, k, b, ldb, x, c, accumulate);
    return;
  }
  const GemvNMultiPanelFn panel = GemvNMultiPanelFor(m);
  const int64_t panels = (n + kGemvRowPanel - 1) / kGemvRowPanel;
  ParallelPanels(panels, m * n * k, [&](int64_t p) {
    const int64_t j0 = p * kGemvRowPanel;
    const int64_t j1 = std::min<int64_t>(n, j0 + kGemvRowPanel);
    panel(j0, j1, k, b, ldb, x, ldx, c, ldc, accumulate);
  });
}

}  // namespace kernels
}  // namespace nn
}  // namespace turl
