#ifndef TURL_NN_TENSOR_H_
#define TURL_NN_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace turl {

class Rng;

namespace nn {

/// Tensor shape: dimension sizes, row-major layout.
using Shape = std::vector<int64_t>;

/// Number of elements implied by a shape (product of dims; 1 for rank 0).
int64_t ShapeNumel(const Shape& shape);

/// "[2, 3]"-style rendering for error messages.
std::string ShapeToString(const Shape& shape);

class Tensor;

/// Internal storage + autograd node for a Tensor. Not used directly by
/// library users; exposed in this header because ops (friend-like free
/// functions in ops.h) build graphs out of these nodes.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  /// Gradient buffer; empty until the first accumulation (lazily allocated
  /// by Tensor::AccumulateGrad or ZeroGrad).
  std::vector<float> grad;
  /// Leaf tensors with requires_grad (parameters) always receive gradients;
  /// interior nodes receive them while a tape is alive.
  bool requires_grad = false;
  /// Parents in the autograd DAG (inputs of the op that produced this node).
  std::vector<std::shared_ptr<TensorImpl>> parents;
  /// Accumulates this node's grad into its parents' grads. Null for leaves.
  std::function<void()> backward_fn;
  /// True when data/grad were leased from the kernels buffer arena (the
  /// node was built inside a kernels::ArenaScope); the destructor then
  /// returns both buffers to the pool for reuse by the next step.
  bool pooled = false;

  ~TensorImpl();
};

/// A reference-counted, row-major float32 tensor with reverse-mode autograd.
///
/// Copying a Tensor is cheap (shared impl). Ops (see ops.h) return new
/// tensors wired into an autograd DAG; calling Backward() on a scalar result
/// runs reverse-mode differentiation and accumulates gradients into every
/// reachable tensor with requires_grad set (directly or transitively).
///
/// The tape is the DAG itself: it is freed when the result tensors holding
/// it are destroyed. Backward() optionally severs graph edges afterwards to
/// release intermediates eagerly (the default).
class Tensor {
 public:
  /// Null tensor; defined() is false.
  Tensor() = default;

  /// Creation helpers --------------------------------------------------
  static Tensor Zeros(Shape shape);
  static Tensor Full(Shape shape, float value);
  /// Wraps `values` (copied) with the given shape; sizes must agree.
  static Tensor FromVector(Shape shape, std::vector<float> values);
  /// Rank-1 tensor of size 1 holding `value`.
  static Tensor Scalar(float value);
  /// Tensor with every element drawn uniformly from [lo, hi).
  static Tensor Random(Shape shape, Rng& rng, float lo = -1.f, float hi = 1.f);

  bool defined() const { return impl_ != nullptr; }

  /// Shape access -------------------------------------------------------
  const Shape& shape() const;
  int64_t ndim() const;
  int64_t dim(int i) const;
  int64_t numel() const;

  /// Raw storage --------------------------------------------------------
  float* data();
  const float* data() const;
  float at(int64_t i) const;          ///< Flat indexing.
  float at2(int64_t r, int64_t c) const;  ///< Rank-2 indexing.

  /// Value of a single-element tensor.
  float item() const;

  /// Copies the underlying buffer out.
  std::vector<float> ToVector() const;

  /// Autograd ------------------------------------------------------------
  bool requires_grad() const;
  /// Marks this tensor as a differentiation leaf (parameter).
  Tensor& set_requires_grad(bool v);

  /// Gradient buffer (allocated zero-filled on first access).
  float* grad();
  const std::vector<float>& grad_vector() const;
  bool has_grad() const;

  /// Zeroes (and allocates if needed) the gradient buffer.
  void ZeroGrad();

  /// Adds `delta` (same numel) into the gradient buffer.
  void AccumulateGrad(const float* delta, int64_t n);

  /// Runs reverse-mode autodiff from this scalar tensor (numel()==1).
  /// Seeds d(this)/d(this)=1, topologically sorts the reachable DAG and
  /// invokes each node's backward function exactly once. When
  /// `release_graph` is true (default), parent edges and closures of
  /// interior nodes are cleared afterwards so intermediate buffers free as
  /// soon as the caller drops its tensors.
  void Backward(bool release_graph = true);

  /// Detaches from the autograd graph: returns a tensor sharing storage but
  /// with no parents (constant w.r.t. differentiation).
  Tensor Detach() const;

  /// Deep copy of data (no graph, no grad).
  Tensor Clone() const;

  /// Internal: direct impl access for ops.
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }
  static Tensor FromImpl(std::shared_ptr<TensorImpl> impl);

 private:
  std::shared_ptr<TensorImpl> impl_;
};

}  // namespace nn
}  // namespace turl

#endif  // TURL_NN_TENSOR_H_
