#ifndef TURL_NN_MODULE_H_
#define TURL_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace turl {
namespace nn {

/// Flat registry of named trainable parameters. Modules register their
/// tensors here at construction; the optimizer and the checkpoint code
/// iterate the registry. Names are hierarchical ("encoder.layer0.attn.wq").
class ParamStore {
 public:
  ParamStore() = default;
  ParamStore(const ParamStore&) = delete;
  ParamStore& operator=(const ParamStore&) = delete;

  /// Registers `t` under `name` (must be unique) with requires_grad set.
  /// Returns the same tensor for chaining.
  Tensor Register(const std::string& name, Tensor t);

  /// Creates and registers a parameter initialized with N(0, stddev).
  Tensor CreateNormal(const std::string& name, Shape shape, float stddev,
                      Rng* rng);

  /// Creates and registers a zero-initialized parameter.
  Tensor CreateZeros(const std::string& name, Shape shape);

  /// Creates and registers a constant-filled parameter.
  Tensor CreateFull(const std::string& name, Shape shape, float value);

  /// Lookup by name; fatal if absent.
  Tensor Get(const std::string& name) const;
  bool Contains(const std::string& name) const;

  const std::vector<std::pair<std::string, Tensor>>& params() const {
    return params_;
  }

  /// Total number of scalar parameters.
  int64_t TotalParameters() const;

  /// Zeroes every parameter gradient.
  void ZeroGrad();

 private:
  std::vector<std::pair<std::string, Tensor>> params_;
};

/// Affine layer y = x W + b with W [in, out], b [out].
class Linear {
 public:
  /// Registers "<prefix>.weight"/"<prefix>.bias" in `store`.
  Linear(ParamStore* store, const std::string& prefix, int64_t in_dim,
         int64_t out_dim, Rng* rng);

  Tensor Forward(const Tensor& x) const;

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  Tensor weight_;
  Tensor bias_;
};

/// Embedding table [vocab, dim] with row lookup.
class Embedding {
 public:
  Embedding(ParamStore* store, const std::string& prefix, int64_t vocab,
            int64_t dim, Rng* rng);

  /// Gathers rows for `ids` -> [ids.size(), dim].
  Tensor Forward(const std::vector<int>& ids) const;

  const Tensor& weight() const { return weight_; }
  int64_t vocab_size() const { return weight_.dim(0); }
  int64_t dim() const { return weight_.dim(1); }

 private:
  Tensor weight_;
};

/// Learned layer normalization over the last dimension.
class LayerNorm {
 public:
  LayerNorm(ParamStore* store, const std::string& prefix, int64_t dim);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gamma_;
  Tensor beta_;
};

/// One pre-norm-free (post-norm, as in BERT) Transformer encoder block:
/// masked multi-head self-attention + residual + LayerNorm, then a
/// position-wise feed-forward (Linear -> GELU -> Linear) + residual +
/// LayerNorm. The additive attention mask carries the visibility matrix.
class TransformerLayer {
 public:
  TransformerLayer(ParamStore* store, const std::string& prefix,
                   int64_t d_model, int64_t d_intermediate, int num_heads,
                   Rng* rng);

  /// x: [n, d_model]; additive_mask: n*n row-major additive attention mask.
  Tensor Forward(const Tensor& x, const std::vector<float>& additive_mask,
                 float dropout_p, bool training, Rng* rng) const;

  int num_heads() const { return num_heads_; }

 private:
  int num_heads_;
  Linear wq_, wk_, wv_, wo_;
  Linear ff1_, ff2_;
  LayerNorm ln_attn_, ln_ff_;
};

/// Stack of N TransformerLayers sharing one visibility mask.
class TransformerEncoder {
 public:
  TransformerEncoder(ParamStore* store, const std::string& prefix,
                     int num_layers, int64_t d_model, int64_t d_intermediate,
                     int num_heads, Rng* rng);

  Tensor Forward(const Tensor& x, const std::vector<float>& additive_mask,
                 float dropout_p, bool training, Rng* rng) const;

  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  std::vector<TransformerLayer> layers_;
};

/// Sums parameter gradient squared norms and, if the global norm exceeds
/// `max_norm`, rescales every gradient in place. Returns the pre-clip norm.
float ClipGradNorm(ParamStore* store, float max_norm);

}  // namespace nn
}  // namespace turl

#endif  // TURL_NN_MODULE_H_
