#ifndef TURL_EVAL_METRICS_H_
#define TURL_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace turl {
namespace eval {

/// Precision / recall / F1 triple (reported as percentages by benches).
struct Prf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// PRF from true-positive / false-positive / false-negative counts.
/// Zero denominators produce zeros rather than NaNs.
Prf ComputePrf(int64_t tp, int64_t fp, int64_t fn);

/// Streaming micro-averaged PRF accumulator for multi-label tasks: feed the
/// predicted and gold label sets per instance.
class MicroPrf {
 public:
  /// Accumulates one instance. Labels are arbitrary ids; duplicates within
  /// one call are counted once.
  void Add(const std::vector<int>& predicted, const std::vector<int>& gold);

  Prf Compute() const { return ComputePrf(tp_, fp_, fn_); }
  int64_t tp() const { return tp_; }
  int64_t fp() const { return fp_; }
  int64_t fn() const { return fn_; }

 private:
  int64_t tp_ = 0, fp_ = 0, fn_ = 0;
};

/// Average precision of a ranked list. `relevant[i]` marks whether rank i
/// (0-based, best first) is a hit; `num_relevant` is the total number of
/// relevant items (>= hits in the list; the denominator of recall). Returns
/// 0 when num_relevant is 0.
double AveragePrecision(const std::vector<bool>& relevant,
                        int64_t num_relevant);

/// Mean of per-query average precisions (0 for empty input).
double MeanOf(const std::vector<double>& values);

/// Precision@k of a ranked relevance list: hits among the first k ranks
/// divided by k (by min(k, list size) when the list is shorter).
double PrecisionAtK(const std::vector<bool>& relevant, int k);

/// Hit@k: 1.0 when any of the first k ranks is relevant, else 0.0. This is
/// what the cell-filling table reports as P@K (one gold entity per query).
double HitAtK(const std::vector<bool>& relevant, int k);

/// Recall@k: hits among the first k ranks divided by num_relevant.
double RecallAtK(const std::vector<bool>& relevant, int k,
                 int64_t num_relevant);

}  // namespace eval
}  // namespace turl

#endif  // TURL_EVAL_METRICS_H_
