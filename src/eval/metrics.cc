#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace turl {
namespace eval {

Prf ComputePrf(int64_t tp, int64_t fp, int64_t fn) {
  Prf out;
  if (tp + fp > 0) out.precision = double(tp) / double(tp + fp);
  if (tp + fn > 0) out.recall = double(tp) / double(tp + fn);
  if (out.precision + out.recall > 0) {
    out.f1 = 2.0 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

void MicroPrf::Add(const std::vector<int>& predicted,
                   const std::vector<int>& gold) {
  std::unordered_set<int> pred_set(predicted.begin(), predicted.end());
  std::unordered_set<int> gold_set(gold.begin(), gold.end());
  for (int p : pred_set) {
    if (gold_set.count(p)) {
      ++tp_;
    } else {
      ++fp_;
    }
  }
  for (int g : gold_set) {
    if (!pred_set.count(g)) ++fn_;
  }
}

double AveragePrecision(const std::vector<bool>& relevant,
                        int64_t num_relevant) {
  if (num_relevant <= 0) return 0.0;
  double sum = 0.0;
  int64_t hits = 0;
  for (size_t i = 0; i < relevant.size(); ++i) {
    if (relevant[i]) {
      ++hits;
      sum += double(hits) / double(i + 1);
    }
  }
  return sum / double(num_relevant);
}

double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / double(values.size());
}

double PrecisionAtK(const std::vector<bool>& relevant, int k) {
  if (k <= 0) return 0.0;
  const int limit = std::min<int>(k, static_cast<int>(relevant.size()));
  if (limit == 0) return 0.0;
  int hits = 0;
  for (int i = 0; i < limit; ++i) hits += relevant[size_t(i)];
  return double(hits) / double(std::min<int>(k, limit == 0 ? 1 : limit));
}

double HitAtK(const std::vector<bool>& relevant, int k) {
  const int limit = std::min<int>(k, static_cast<int>(relevant.size()));
  for (int i = 0; i < limit; ++i) {
    if (relevant[size_t(i)]) return 1.0;
  }
  return 0.0;
}

double RecallAtK(const std::vector<bool>& relevant, int k,
                 int64_t num_relevant) {
  if (num_relevant <= 0 || k <= 0) return 0.0;
  const int limit = std::min<int>(k, static_cast<int>(relevant.size()));
  int hits = 0;
  for (int i = 0; i < limit; ++i) hits += relevant[size_t(i)];
  return double(hits) / double(num_relevant);
}

}  // namespace eval
}  // namespace turl
