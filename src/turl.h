#ifndef TURL_TURL_H_
#define TURL_TURL_H_

/// Umbrella facade for the TURL reproduction. Applications include this one
/// header and use the `turl::` aliases below; the layering mirrors a typical
/// program's lifecycle:
///
///   1. configure      turl::ContextConfig, turl::TurlConfig
///   2. build data     turl::BuildContext -> turl::TurlContext (world,
///                     corpus, vocabularies, tokenizer factory)
///   3. model          turl::TurlModel (+ turl::Pretrainer or
///                     turl::GetOrTrainModel for the cached checkpoint)
///   4. runtime        turl::InferenceSession — thread-pooled batched
///                     inference over the (now read-only) model
///   5. task heads     turl::TurlEntityLinker, turl::TurlColumnTyper,
///                     turl::TurlRelationExtractor, turl::TurlRowPopulator,
///                     turl::TurlCellFiller, turl::TurlSchemaAugmenter —
///                     all expose the unified Encode/Scores/Predict API
///                     (see tasks/task_head.h) and session-aware Evaluate.
///
/// Sub-namespace headers remain available for anything not re-exported here
/// (custom encodings, nn ops, baselines, observability internals).

#include "core/candidates.h"
#include "core/context.h"
#include "core/masking.h"
#include "core/model.h"
#include "core/model_cache.h"
#include "core/pretrain.h"
#include "core/table_encoding.h"
#include "rt/batch_scheduler.h"
#include "rt/inference_session.h"
#include "rt/thread_pool.h"
#include "tasks/cell_filling.h"
#include "tasks/column_type.h"
#include "tasks/entity_linking.h"
#include "tasks/relation_extraction.h"
#include "tasks/row_population.h"
#include "tasks/schema_augmentation.h"
#include "tasks/task_head.h"

namespace turl {

// ---- 1. Configuration ----------------------------------------------------
using core::ContextConfig;
using core::TurlConfig;

// ---- 2. Data pipeline ----------------------------------------------------
using core::BuildContext;
using core::TurlContext;
using core::EncodedTable;
using core::EncodeOptions;
using core::EncodeTable;

// ---- 3. Model + pre-training ---------------------------------------------
using core::TurlModel;
using core::Pretrainer;
using core::PretrainResult;
using core::GetOrTrainModel;
using core::DefaultCacheDir;
// Masked-recovery helpers the pre-training objectives are built from.
using core::MaskableEntityPositions;
using core::MaskEntityCell;
using core::BuildMerCandidates;

// ---- 4. Inference runtime ------------------------------------------------
using rt::InferenceSession;
using rt::SessionOptions;
using rt::BatchScheduler;
using rt::BatchSchedulerOptions;
using rt::ThreadPool;

// ---- 5. Task heads (unified TaskHead API) --------------------------------
using tasks::FinetuneOptions;
using tasks::InputVariant;
using tasks::BulkPredict;
using tasks::BulkScores;

using tasks::TurlEntityLinker;
using tasks::ElDataset;
using tasks::ElInstance;
using tasks::BuildElDataset;

using tasks::TurlColumnTyper;
using tasks::ColumnTypeDataset;
using tasks::ColumnTypeInstance;
using tasks::BuildColumnTypeDataset;

using tasks::TurlRelationExtractor;
using tasks::RelationDataset;
using tasks::RelationInstance;
using tasks::BuildRelationDataset;

using tasks::TurlRowPopulator;
using tasks::RowPopInstance;
using tasks::BuildRowPopInstances;

using tasks::TurlCellFiller;
using tasks::CellFillInstance;
using tasks::BuildCellFillInstances;

using tasks::TurlSchemaAugmenter;
using tasks::HeaderVocab;
using tasks::SchemaAugInstance;
using tasks::BuildHeaderVocab;
using tasks::BuildSchemaAugInstances;

}  // namespace turl

#endif  // TURL_TURL_H_
