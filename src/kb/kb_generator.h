#ifndef TURL_KB_KB_GENERATOR_H_
#define TURL_KB_KB_GENERATOR_H_

#include "kb/kb.h"
#include "util/rng.h"

namespace turl {
namespace kb {

/// Size knobs for the synthetic world. The defaults produce roughly 1.5K
/// entities and 4K facts — large enough for the corpus generator to emit
/// thousands of distinct relational tables, small enough to pre-train on a
/// single CPU core.
struct KbGeneratorConfig {
  int num_countries = 12;
  int num_cities = 90;
  int num_languages = 10;
  int num_awards = 16;
  int num_labels = 14;
  int num_teams = 32;
  int num_directors = 60;
  int num_actors = 160;
  int num_athletes = 420;
  int num_musicians = 40;
  /// Films per director drawn uniformly from [min, max].
  int min_films_per_director = 4;
  int max_films_per_director = 16;
  int min_albums_per_musician = 2;
  int max_albums_per_musician = 8;
  /// Probability that a fine-grained person type (actor/director/...) is
  /// dropped, leaving only the coarse `person` type — mimics KB
  /// incompleteness (paper §6.2's missing DBpedia types).
  double type_dropout = 0.2;
  /// Probability a film wins some award.
  double award_probability = 0.15;
};

/// The generated KB plus cached handles for every type and relation so task
/// and corpus code does not re-resolve names.
struct SyntheticKb {
  KnowledgeBase kb;

  // Types.
  TypeId t_person, t_director, t_actor, t_pro_athlete, t_musician;
  TypeId t_location, t_country, t_citytown;
  TypeId t_organization, t_sports_team, t_record_label;
  TypeId t_creative_work, t_film, t_album;
  TypeId t_award, t_language;

  // Relations.
  RelationId r_directed_by, r_starring, r_film_language, r_film_country;
  RelationId r_won_award, r_plays_for, r_nationality, r_birthplace;
  RelationId r_located_in, r_team_city, r_artist, r_label;
};

/// Builds the synthetic world: a type hierarchy mirroring the paper's
/// Freebase types (person/pro_athlete/actor, location/citytown, ...), typed
/// relations with table-header surface forms, entities with Zipf
/// popularity, generated names/aliases/descriptions (with deliberate surface
/// ambiguity), deliberately incomplete type assignments, and clustered facts
/// (each director directs several films, each team fields many athletes) so
/// relational tables with shared topics exist.
SyntheticKb GenerateSyntheticKb(const KbGeneratorConfig& config, Rng* rng);

}  // namespace kb
}  // namespace turl

#endif  // TURL_KB_KB_GENERATOR_H_
