#include "kb/kb.h"

#include <algorithm>

#include "util/logging.h"

namespace turl {
namespace kb {

namespace {
const std::vector<EntityId> kEmptyEntityList;
}  // namespace

TypeId KnowledgeBase::AddType(const std::string& name, TypeId parent) {
  TURL_CHECK(type_by_name_.find(name) == type_by_name_.end())
      << "duplicate type: " << name;
  if (parent != kInvalidType) {
    TURL_CHECK_GE(parent, 0);
    TURL_CHECK_LT(parent, num_types());
  }
  const TypeId id = static_cast<TypeId>(types_.size());
  types_.push_back(EntityType{name, parent});
  type_by_name_.emplace(name, id);
  entities_by_type_.emplace_back();
  return id;
}

RelationId KnowledgeBase::AddRelation(Relation relation) {
  TURL_CHECK(relation_by_name_.find(relation.name) == relation_by_name_.end())
      << "duplicate relation: " << relation.name;
  TURL_CHECK_GE(relation.subject_type, 0);
  TURL_CHECK_LT(relation.subject_type, num_types());
  TURL_CHECK_GE(relation.object_type, 0);
  TURL_CHECK_LT(relation.object_type, num_types());
  TURL_CHECK(!relation.header_surfaces.empty())
      << "relation needs at least one header surface: " << relation.name;
  const RelationId id = static_cast<RelationId>(relations_.size());
  relation_by_name_.emplace(relation.name, id);
  relations_.push_back(std::move(relation));
  facts_fwd_.emplace_back();
  facts_rev_.emplace_back();
  return id;
}

EntityId KnowledgeBase::AddEntity(Entity entity) {
  const EntityId id = static_cast<EntityId>(entities_.size());
  for (TypeId t : entity.types) {
    TURL_CHECK_GE(t, 0);
    TURL_CHECK_LT(t, num_types());
    entities_by_type_[static_cast<size_t>(t)].push_back(id);
  }
  entities_.push_back(std::move(entity));
  return id;
}

void KnowledgeBase::AddFact(EntityId subject, RelationId relation,
                            EntityId object) {
  TURL_CHECK_GE(relation, 0);
  TURL_CHECK_LT(relation, num_relations());
  TURL_CHECK_GE(subject, 0);
  TURL_CHECK_LT(subject, num_entities());
  TURL_CHECK_GE(object, 0);
  TURL_CHECK_LT(object, num_entities());
  auto& objs = facts_fwd_[static_cast<size_t>(relation)][subject];
  if (std::find(objs.begin(), objs.end(), object) != objs.end()) return;
  objs.push_back(object);
  facts_rev_[static_cast<size_t>(relation)][object].push_back(subject);
  ++num_facts_;
}

const Entity& KnowledgeBase::entity(EntityId id) const {
  TURL_CHECK_GE(id, 0);
  TURL_CHECK_LT(id, num_entities());
  return entities_[static_cast<size_t>(id)];
}

const EntityType& KnowledgeBase::type(TypeId id) const {
  TURL_CHECK_GE(id, 0);
  TURL_CHECK_LT(id, num_types());
  return types_[static_cast<size_t>(id)];
}

const Relation& KnowledgeBase::relation(RelationId id) const {
  TURL_CHECK_GE(id, 0);
  TURL_CHECK_LT(id, num_relations());
  return relations_[static_cast<size_t>(id)];
}

TypeId KnowledgeBase::TypeByName(const std::string& name) const {
  auto it = type_by_name_.find(name);
  return it == type_by_name_.end() ? kInvalidType : it->second;
}

RelationId KnowledgeBase::RelationByName(const std::string& name) const {
  auto it = relation_by_name_.find(name);
  return it == relation_by_name_.end() ? kInvalidRelation : it->second;
}

bool KnowledgeBase::EntityHasType(EntityId e, TypeId t) const {
  for (TypeId direct : entity(e).types) {
    TypeId cur = direct;
    while (cur != kInvalidType) {
      if (cur == t) return true;
      cur = types_[static_cast<size_t>(cur)].parent;
    }
  }
  return false;
}

std::vector<TypeId> KnowledgeBase::ExpandedTypes(EntityId e) const {
  std::vector<TypeId> out;
  for (TypeId direct : entity(e).types) {
    TypeId cur = direct;
    while (cur != kInvalidType) {
      if (std::find(out.begin(), out.end(), cur) == out.end()) out.push_back(cur);
      cur = types_[static_cast<size_t>(cur)].parent;
    }
  }
  return out;
}

const std::vector<EntityId>& KnowledgeBase::Objects(EntityId s,
                                                    RelationId r) const {
  TURL_CHECK_GE(r, 0);
  TURL_CHECK_LT(r, num_relations());
  const auto& m = facts_fwd_[static_cast<size_t>(r)];
  auto it = m.find(s);
  return it == m.end() ? kEmptyEntityList : it->second;
}

const std::vector<EntityId>& KnowledgeBase::Subjects(RelationId r,
                                                     EntityId o) const {
  TURL_CHECK_GE(r, 0);
  TURL_CHECK_LT(r, num_relations());
  const auto& m = facts_rev_[static_cast<size_t>(r)];
  auto it = m.find(o);
  return it == m.end() ? kEmptyEntityList : it->second;
}

const std::vector<EntityId>& KnowledgeBase::EntitiesOfType(TypeId t) const {
  TURL_CHECK_GE(t, 0);
  TURL_CHECK_LT(t, num_types());
  return entities_by_type_[static_cast<size_t>(t)];
}

std::vector<RelationId> KnowledgeBase::RelationsWithSubjectType(
    TypeId t) const {
  std::vector<RelationId> out;
  for (RelationId r = 0; r < num_relations(); ++r) {
    if (relations_[static_cast<size_t>(r)].subject_type == t) out.push_back(r);
  }
  return out;
}

std::vector<std::tuple<EntityId, RelationId, EntityId>>
KnowledgeBase::AllFacts() const {
  std::vector<std::tuple<EntityId, RelationId, EntityId>> out;
  out.reserve(static_cast<size_t>(num_facts_));
  for (RelationId r = 0; r < num_relations(); ++r) {
    for (const auto& [subject, objects] : facts_fwd_[static_cast<size_t>(r)]) {
      for (EntityId object : objects) out.emplace_back(subject, r, object);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (std::get<1>(a) != std::get<1>(b)) return std::get<1>(a) < std::get<1>(b);
    if (std::get<0>(a) != std::get<0>(b)) return std::get<0>(a) < std::get<0>(b);
    return std::get<2>(a) < std::get<2>(b);
  });
  return out;
}

}  // namespace kb
}  // namespace turl
