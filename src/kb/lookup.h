#ifndef TURL_KB_LOOKUP_H_
#define TURL_KB_LOOKUP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "kb/kb.h"

namespace turl {
namespace kb {

/// One candidate returned by the lookup service.
struct LookupCandidate {
  EntityId entity = kInvalidEntity;
  /// Higher is better: combines surface-match quality with the entity's
  /// popularity prior (the ordering Wikidata Lookup would give).
  double score = 0.0;
};

/// Candidate-generation service over the KB's surface forms — this
/// repository's stand-in for the Wikidata Lookup service used by the
/// paper's entity-linking pipeline (§6.2). It indexes canonical names and
/// aliases under NormalizeSurface() and answers mention queries with a
/// ranked top-K list: exact surface matches first (ranked by popularity),
/// then near-misses within a small edit distance. Like the real service it
/// is imperfect: heavily corrupted mentions return empty candidate sets and
/// ambiguous surfaces return several entities.
class LookupService {
 public:
  /// Builds the surface index. Keeps a pointer to `kb`; it must outlive the
  /// service. `alias_drop_percent` non-canonical surfaces are deterministically
  /// left out of the index (hash-based), modeling the real service's
  /// incomplete surface coverage — the reason the paper's oracle recall sits
  /// well below 100%.
  explicit LookupService(const KnowledgeBase* kb, int alias_drop_percent = 15);

  /// Top-`k` candidates for `mention`, best first.
  std::vector<LookupCandidate> Lookup(const std::string& mention,
                                      int k = 50) const;

  /// Convenience: the single best candidate or kInvalidEntity.
  EntityId Top1(const std::string& mention) const;

  /// Number of distinct indexed surface forms.
  size_t num_surfaces() const { return index_.size(); }

 private:
  const KnowledgeBase* kb_;
  /// Normalized surface -> entities carrying it.
  std::unordered_map<std::string, std::vector<EntityId>> index_;
  /// Surfaces bucketed by length for cheap fuzzy search.
  std::vector<std::vector<const std::string*>> by_length_;
};

}  // namespace kb
}  // namespace turl

#endif  // TURL_KB_LOOKUP_H_
