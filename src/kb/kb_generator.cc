#include "kb/kb_generator.h"

#include <cctype>
#include <cmath>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace turl {
namespace kb {

namespace {

/// Deterministic name factory built on syllable pools. Reuses stems across
/// categories on purpose: shared last names and city/team stems create the
/// surface-form ambiguity entity linking must resolve.
class NameFactory {
 public:
  explicit NameFactory(Rng* rng) : rng_(rng) {}

  std::string Capitalize(std::string s) {
    if (!s.empty()) s[0] = static_cast<char>(std::toupper(s[0]));
    return s;
  }

  std::string Stem(int syllables) {
    static const char* kSyllables[] = {
        "al", "ber", "ka", "ri", "mi", "no",  "sa",  "ta", "vi", "lu",
        "dan", "el", "ro", "jo", "an", "mar", "gre", "ha", "len", "or",
        "pe", "qui", "sol", "tra", "ul", "ven", "wes", "yor", "zan", "bel"};
    std::string s;
    for (int i = 0; i < syllables; ++i) {
      s += kSyllables[rng_->Uniform(sizeof(kSyllables) / sizeof(char*))];
    }
    return s;
  }

  std::string FirstName() { return Capitalize(Stem(2)); }

  std::string LastName() {
    static const char* kSuffix[] = {"son", "ez",   "ini",  "ov",  "escu",
                                    "berg", "stein", "wood", "man", "sen"};
    return Capitalize(Stem(1 + int(rng_->Uniform(2))) +
                      kSuffix[rng_->Uniform(sizeof(kSuffix) / sizeof(char*))]);
  }

  std::string CityName() {
    static const char* kSuffix[] = {"ville", "ton", "burg", "field",
                                    "port",  "ford", "ham",  "dale"};
    return Capitalize(Stem(1 + int(rng_->Uniform(2))) +
                      kSuffix[rng_->Uniform(sizeof(kSuffix) / sizeof(char*))]);
  }

  std::string CountryName() {
    static const char* kSuffix[] = {"land", "ia", "stan", "ovia", "onia"};
    return Capitalize(Stem(1 + int(rng_->Uniform(2))) +
                      kSuffix[rng_->Uniform(sizeof(kSuffix) / sizeof(char*))]);
  }

  std::string LanguageName() {
    static const char* kSuffix[] = {"ish", "ese", "ic", "an"};
    return Capitalize(Stem(1 + int(rng_->Uniform(2))) +
                      kSuffix[rng_->Uniform(sizeof(kSuffix) / sizeof(char*))]);
  }

  std::string TeamMascot() {
    static const char* kMascots[] = {"United",   "Rovers", "FC",     "Wanderers",
                                     "City",     "Athletic", "Tigers", "Eagles",
                                     "Dynamo",   "Rangers"};
    return kMascots[rng_->Uniform(sizeof(kMascots) / sizeof(char*))];
  }

  std::string Noun() {
    static const char* kNouns[] = {"river",  "crown",  "shadow", "garden",
                                   "voyage", "mirror", "storm",  "harvest",
                                   "silence", "horizon", "ember", "tide"};
    return kNouns[rng_->Uniform(sizeof(kNouns) / sizeof(char*))];
  }

  std::string Adjective() {
    static const char* kAdjs[] = {"silent", "golden", "broken",  "distant",
                                  "hidden", "last",   "eternal", "crimson",
                                  "quiet",  "lost"};
    return kAdjs[rng_->Uniform(sizeof(kAdjs) / sizeof(char*))];
  }

  /// Returns a fresh string not in `used` by retrying (and ultimately
  /// appending a numeral).
  std::string Unique(std::unordered_set<std::string>* used,
                     const std::function<std::string()>& gen) {
    for (int attempt = 0; attempt < 40; ++attempt) {
      std::string s = gen();
      if (used->insert(s).second) return s;
    }
    for (int n = 2;; ++n) {
      std::string s = gen() + " " + std::to_string(n);
      if (used->insert(s).second) return s;
    }
  }

 private:
  Rng* rng_;
};

}  // namespace

SyntheticKb GenerateSyntheticKb(const KbGeneratorConfig& config, Rng* rng) {
  SyntheticKb world;
  KnowledgeBase& kb = world.kb;
  NameFactory names(rng);

  // ---- Type hierarchy -------------------------------------------------
  world.t_person = kb.AddType("person");
  world.t_director = kb.AddType("director", world.t_person);
  world.t_actor = kb.AddType("actor", world.t_person);
  world.t_pro_athlete = kb.AddType("pro_athlete", world.t_person);
  world.t_musician = kb.AddType("musician", world.t_person);
  world.t_location = kb.AddType("location");
  world.t_country = kb.AddType("country", world.t_location);
  world.t_citytown = kb.AddType("citytown", world.t_location);
  world.t_organization = kb.AddType("organization");
  world.t_sports_team = kb.AddType("sports_team", world.t_organization);
  world.t_record_label = kb.AddType("record_label", world.t_organization);
  world.t_creative_work = kb.AddType("creative_work");
  world.t_film = kb.AddType("film", world.t_creative_work);
  world.t_album = kb.AddType("album", world.t_creative_work);
  world.t_award = kb.AddType("award");
  world.t_language = kb.AddType("language");

  // ---- Relations -------------------------------------------------------
  world.r_directed_by = kb.AddRelation(
      {"directed_by", world.t_film, world.t_director,
       {"director", "directed by", "film director"}, true});
  world.r_starring = kb.AddRelation({"starring", world.t_film, world.t_actor,
                                     {"starring", "lead actor", "actor"},
                                     false});
  world.r_film_language = kb.AddRelation(
      {"film_language", world.t_film, world.t_language, {"language"}, true});
  world.r_film_country =
      kb.AddRelation({"film_country", world.t_film, world.t_country,
                      {"country", "nation"}, true});
  world.r_won_award = kb.AddRelation(
      {"won_award", world.t_film, world.t_award, {"award", "honour"}, false});
  world.r_plays_for = kb.AddRelation(
      {"plays_for", world.t_pro_athlete, world.t_sports_team,
       {"club", "team", "current club"}, false});
  world.r_nationality = kb.AddRelation(
      {"nationality", world.t_pro_athlete, world.t_country,
       {"nationality", "country"}, true});
  world.r_birthplace = kb.AddRelation(
      {"birthplace", world.t_person, world.t_citytown,
       {"birthplace", "place of birth", "hometown"}, true});
  world.r_located_in = kb.AddRelation(
      {"located_in", world.t_citytown, world.t_country, {"country"}, true});
  world.r_team_city = kb.AddRelation(
      {"team_city", world.t_sports_team, world.t_citytown,
       {"city", "home city", "location"}, true});
  world.r_artist = kb.AddRelation({"artist", world.t_album, world.t_musician,
                                   {"artist", "performer", "musician"}, true});
  world.r_label = kb.AddRelation({"label", world.t_album, world.t_record_label,
                                  {"label", "record label"}, true});

  std::unordered_set<std::string> used_names;

  // Popularity rank r within a category gets weight 1/(r+1)^0.8.
  auto popularity = [](int rank) { return 1.0 / std::pow(double(rank + 1), 0.8); };

  // ---- Countries / languages / awards / labels -------------------------
  std::vector<EntityId> countries, cities, languages, awards, labels, teams;
  for (int i = 0; i < config.num_countries; ++i) {
    std::string name =
        names.Unique(&used_names, [&] { return names.CountryName(); });
    Entity e;
    e.name = name;
    e.types = {world.t_country};
    e.popularity = popularity(i);
    e.description = name + " is a country";
    countries.push_back(kb.AddEntity(std::move(e)));
  }
  for (int i = 0; i < config.num_languages; ++i) {
    std::string name =
        names.Unique(&used_names, [&] { return names.LanguageName(); });
    Entity e;
    e.name = name;
    e.types = {world.t_language};
    e.popularity = popularity(i);
    e.description = name + " is a language";
    languages.push_back(kb.AddEntity(std::move(e)));
  }
  for (int i = 0; i < config.num_awards; ++i) {
    static const char* kCats[] = {"direction", "picture", "acting", "music",
                                  "screenplay"};
    std::string stem = names.Capitalize(names.Stem(2));
    std::string cat = kCats[rng->Uniform(5)];
    std::string name = names.Unique(&used_names, [&] {
      return stem + " award for best " + cat;
    });
    Entity e;
    e.name = name;
    e.aliases = {stem + " award"};
    e.types = {world.t_award};
    e.popularity = popularity(i);
    e.description = name + " is an award for " + cat;
    awards.push_back(kb.AddEntity(std::move(e)));
  }
  for (int i = 0; i < config.num_labels; ++i) {
    std::string name = names.Unique(&used_names, [&] {
      return names.Capitalize(names.Stem(2)) + " records";
    });
    Entity e;
    e.name = name;
    e.types = {world.t_record_label};
    e.popularity = popularity(i);
    e.description = name + " is a record label";
    labels.push_back(kb.AddEntity(std::move(e)));
  }

  // ---- Cities ----------------------------------------------------------
  for (int i = 0; i < config.num_cities; ++i) {
    std::string name =
        names.Unique(&used_names, [&] { return names.CityName(); });
    EntityId country = countries[rng->Uniform(countries.size())];
    Entity e;
    e.name = name;
    e.types = {world.t_citytown};
    if (rng->Bernoulli(config.type_dropout)) e.types = {world.t_location};
    e.popularity = popularity(i);
    e.description = name + " is a city in " + kb.entity(country).name;
    EntityId id = kb.AddEntity(std::move(e));
    kb.AddFact(id, world.r_located_in, country);
    cities.push_back(id);
  }

  // ---- Teams -----------------------------------------------------------
  for (int i = 0; i < config.num_teams; ++i) {
    EntityId city = cities[rng->Uniform(cities.size())];
    std::string city_name = kb.entity(city).name;
    std::string name = names.Unique(
        &used_names, [&] { return city_name + " " + names.TeamMascot(); });
    Entity e;
    e.name = name;
    e.aliases = {city_name};  // Teams are often referred to by their city.
    e.types = {world.t_sports_team};
    e.popularity = popularity(i);
    e.description = name + " is a sports team based in " + city_name;
    EntityId id = kb.AddEntity(std::move(e));
    kb.AddFact(id, world.r_team_city, city);
    teams.push_back(id);
  }

  // ---- People ----------------------------------------------------------
  // A shared pool of last names creates cross-person ambiguity.
  std::vector<std::string> last_names;
  const int num_last_names =
      std::max(8, (config.num_directors + config.num_actors +
                   config.num_athletes + config.num_musicians) /
                      6);
  std::unordered_set<std::string> used_last;
  for (int i = 0; i < num_last_names; ++i) {
    last_names.push_back(
        names.Unique(&used_last, [&] { return names.LastName(); }));
  }

  auto make_person = [&](TypeId fine_type, int rank) -> EntityId {
    std::string first = names.FirstName();
    std::string last = last_names[rng->Uniform(last_names.size())];
    std::string name =
        names.Unique(&used_names, [&] { return first + " " + last; });
    // Rebuild first in case Unique retried with a new draw: recover pieces.
    auto parts = SplitWhitespace(name);
    Entity e;
    e.name = name;
    e.aliases = {std::string(1, parts[0][0]) + ". " + parts[1]};
    if (rng->Bernoulli(0.5)) e.aliases.push_back(parts[1]);  // Surname only.
    e.types = {fine_type};
    if (rng->Bernoulli(config.type_dropout)) e.types = {world.t_person};
    e.popularity = popularity(rank);
    EntityId city = cities[rng->Uniform(cities.size())];
    e.description = name + " is a " + kb.type(fine_type).name + " born in " +
                    kb.entity(city).name;
    EntityId id = kb.AddEntity(std::move(e));
    kb.AddFact(id, world.r_birthplace, city);
    return id;
  };

  std::vector<EntityId> directors, actors, athletes, musicians;
  for (int i = 0; i < config.num_directors; ++i)
    directors.push_back(make_person(world.t_director, i));
  for (int i = 0; i < config.num_actors; ++i)
    actors.push_back(make_person(world.t_actor, i));
  for (int i = 0; i < config.num_musicians; ++i)
    musicians.push_back(make_person(world.t_musician, i));

  for (int i = 0; i < config.num_athletes; ++i) {
    EntityId id = make_person(world.t_pro_athlete, i);
    EntityId team = teams[rng->Uniform(teams.size())];
    kb.AddFact(id, world.r_plays_for, team);
    if (rng->Bernoulli(0.2)) {  // Career move: a second club on record.
      kb.AddFact(id, world.r_plays_for, teams[rng->Uniform(teams.size())]);
    }
    // Nationality correlates with the team's home country 70% of the time.
    EntityId team_city = kb.Objects(team, world.r_team_city)[0];
    EntityId home_country = kb.Objects(team_city, world.r_located_in)[0];
    EntityId nat = rng->Bernoulli(0.7)
                       ? home_country
                       : countries[rng->Uniform(countries.size())];
    kb.AddFact(id, world.r_nationality, nat);
    athletes.push_back(id);
  }

  // ---- Films -----------------------------------------------------------
  for (size_t di = 0; di < directors.size(); ++di) {
    EntityId director = directors[di];
    const int n_films = static_cast<int>(
        rng->UniformInt(config.min_films_per_director,
                        config.max_films_per_director));
    // A director's films cluster in language and country.
    EntityId home_lang = languages[rng->Uniform(languages.size())];
    EntityId home_country = countries[rng->Uniform(countries.size())];
    for (int f = 0; f < n_films; ++f) {
      std::string name = names.Unique(&used_names, [&] {
        if (rng->Bernoulli(0.5)) {
          return "The " + names.Adjective() + " " + names.Noun();
        }
        return names.Capitalize(names.Noun()) + " of " +
               names.Capitalize(names.Stem(2));
      });
      Entity e;
      e.name = name;
      if (StartsWith(name, "The ")) e.aliases = {name.substr(4)};
      e.types = {world.t_film};
      if (rng->Bernoulli(config.type_dropout)) e.types = {world.t_creative_work};
      e.popularity = popularity(static_cast<int>(di) + f);
      e.description =
          name + " is a film directed by " + kb.entity(director).name;
      EntityId id = kb.AddEntity(std::move(e));
      kb.AddFact(id, world.r_directed_by, director);
      // Lead actor first, then 1-2 supporting actors: the relation is
      // multi-valued, which keeps cell filling non-trivial (several row
      // mates share the "starring" header across tables).
      const int cast = 1 + static_cast<int>(rng->Uniform(3));
      for (int a = 0; a < cast; ++a) {
        kb.AddFact(id, world.r_starring, actors[rng->Uniform(actors.size())]);
      }
      kb.AddFact(id, world.r_film_language,
                 rng->Bernoulli(0.75) ? home_lang
                                      : languages[rng->Uniform(languages.size())]);
      if (rng->Bernoulli(0.15)) {  // Bilingual productions.
        kb.AddFact(id, world.r_film_language,
                   languages[rng->Uniform(languages.size())]);
      }
      kb.AddFact(id, world.r_film_country,
                 rng->Bernoulli(0.75)
                     ? home_country
                     : countries[rng->Uniform(countries.size())]);
      if (rng->Bernoulli(config.award_probability)) {
        kb.AddFact(id, world.r_won_award, awards[rng->Uniform(awards.size())]);
        if (rng->Bernoulli(0.3)) {
          kb.AddFact(id, world.r_won_award,
                     awards[rng->Uniform(awards.size())]);
        }
      }
    }
  }

  // ---- Albums ----------------------------------------------------------
  for (size_t mi = 0; mi < musicians.size(); ++mi) {
    EntityId musician = musicians[mi];
    EntityId home_label = labels[rng->Uniform(labels.size())];
    const int n_albums = static_cast<int>(rng->UniformInt(
        config.min_albums_per_musician, config.max_albums_per_musician));
    for (int a = 0; a < n_albums; ++a) {
      std::string name = names.Unique(&used_names, [&] {
        return names.Capitalize(names.Adjective()) + " " + names.Noun();
      });
      Entity e;
      e.name = name;
      e.types = {world.t_album};
      e.popularity = popularity(static_cast<int>(mi) + a);
      e.description = name + " is an album by " + kb.entity(musician).name;
      EntityId id = kb.AddEntity(std::move(e));
      kb.AddFact(id, world.r_artist, musician);
      kb.AddFact(id, world.r_label,
                 rng->Bernoulli(0.8) ? home_label
                                     : labels[rng->Uniform(labels.size())]);
    }
  }

  return world;
}

}  // namespace kb
}  // namespace turl
