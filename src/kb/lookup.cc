#include "kb/lookup.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace turl {
namespace kb {

namespace {

/// Deterministic hash for surface-coverage dropout.
uint64_t SurfaceHash(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  return h;
}

}  // namespace

LookupService::LookupService(const KnowledgeBase* kb, int alias_drop_percent)
    : kb_(kb) {
  TURL_CHECK(kb != nullptr);
  for (EntityId id = 0; id < kb->num_entities(); ++id) {
    const Entity& e = kb->entity(id);
    std::vector<std::string> surfaces = {e.name};
    surfaces.insert(surfaces.end(), e.aliases.begin(), e.aliases.end());
    for (size_t si = 0; si < surfaces.size(); ++si) {
      const std::string& s = surfaces[si];
      // Canonical names are always indexed; a deterministic fraction of
      // aliases is not (incomplete surface coverage).
      if (si > 0 &&
          SurfaceHash(s) % 100 < static_cast<uint64_t>(alias_drop_percent)) {
        continue;
      }
      std::string norm = NormalizeSurface(s);
      if (norm.empty()) continue;
      auto& bucket = index_[norm];
      if (std::find(bucket.begin(), bucket.end(), id) == bucket.end()) {
        bucket.push_back(id);
      }
    }
  }
  size_t max_len = 0;
  for (const auto& [surface, ids] : index_) {
    max_len = std::max(max_len, surface.size());
  }
  by_length_.resize(max_len + 1);
  for (const auto& [surface, ids] : index_) {
    by_length_[surface.size()].push_back(&surface);
  }
}

std::vector<LookupCandidate> LookupService::Lookup(const std::string& mention,
                                                   int k) const {
  std::vector<LookupCandidate> out;
  const std::string norm = NormalizeSurface(mention);
  if (norm.empty()) return out;

  // Exact surface hits: match quality 1.0.
  auto it = index_.find(norm);
  if (it != index_.end()) {
    for (EntityId id : it->second) {
      out.push_back({id, 1.0 + kb_->entity(id).popularity});
    }
  }

  // Fuzzy hits within edit distance <= 2, only among surfaces of similar
  // length (a classic length-filtered scan; the index is small).
  const size_t len = norm.size();
  const size_t lo = len > 2 ? len - 2 : 0;
  const size_t hi = std::min(len + 2, by_length_.empty()
                                          ? size_t(0)
                                          : by_length_.size() - 1);
  for (size_t l = lo; l <= hi && l < by_length_.size(); ++l) {
    for (const std::string* surface : by_length_[l]) {
      if (*surface == norm) continue;  // Already covered as exact.
      const size_t dist = EditDistance(*surface, norm);
      if (dist > 2) continue;
      const double quality = dist == 1 ? 0.5 : 0.25;
      for (EntityId id : index_.at(*surface)) {
        out.push_back({id, quality + 0.5 * kb_->entity(id).popularity});
      }
    }
  }

  // Deduplicate, keeping the best score per entity.
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.entity != b.entity) return a.entity < b.entity;
    return a.score > b.score;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const auto& a, const auto& b) {
                          return a.entity == b.entity;
                        }),
            out.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.entity < b.entity;
  });
  if (static_cast<int>(out.size()) > k) out.resize(static_cast<size_t>(k));
  return out;
}

EntityId LookupService::Top1(const std::string& mention) const {
  auto candidates = Lookup(mention, 1);
  return candidates.empty() ? kInvalidEntity : candidates[0].entity;
}

}  // namespace kb
}  // namespace turl
