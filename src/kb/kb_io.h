#ifndef TURL_KB_KB_IO_H_
#define TURL_KB_KB_IO_H_

#include <string>

#include "kb/kb.h"
#include "util/status.h"

namespace turl {
namespace kb {

/// Writes the complete knowledge base (types, relations, entities, facts)
/// to `path` in the library's binary format.
Status SaveKnowledgeBase(const KnowledgeBase& kb, const std::string& path);

/// Reads a knowledge base written by SaveKnowledgeBase. Ids are preserved
/// exactly (tables and vocabularies referencing them stay valid).
Result<KnowledgeBase> LoadKnowledgeBase(const std::string& path);

}  // namespace kb
}  // namespace turl

#endif  // TURL_KB_KB_IO_H_
