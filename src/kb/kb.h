#ifndef TURL_KB_KB_H_
#define TURL_KB_KB_H_

#include <cstdint>
#include <tuple>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace turl {
namespace kb {

/// Dense integer handles into the KB's entity/type/relation tables.
using EntityId = int32_t;
using TypeId = int32_t;
using RelationId = int32_t;
inline constexpr EntityId kInvalidEntity = -1;
inline constexpr TypeId kInvalidType = -1;
inline constexpr RelationId kInvalidRelation = -1;

/// A semantic type in the (single-parent) type hierarchy, e.g.
/// person -> pro_athlete. Mirrors the Freebase types the paper annotates
/// columns with.
struct EntityType {
  std::string name;
  TypeId parent = kInvalidType;
};

/// A KB predicate with a type signature, e.g. directed_by(film, director).
/// `header_surfaces` are the column-header strings Web tables use for this
/// relation ("director", "directed by", ...), which the table generator
/// samples from.
struct Relation {
  std::string name;
  TypeId subject_type = kInvalidType;
  TypeId object_type = kInvalidType;
  std::vector<std::string> header_surfaces;
  /// Functional relations have at most one object per subject (birthplace);
  /// non-functional ones may have several (starring).
  bool functional = true;
};

/// An entity with its lexical forms. `types` may be deliberately incomplete
/// (mimicking DBpedia incompleteness); `popularity` drives both mention
/// frequency and lookup-ranking priors.
struct Entity {
  std::string name;
  std::vector<std::string> aliases;
  std::string description;
  std::vector<TypeId> types;
  double popularity = 1.0;
};

/// In-memory knowledge base: entities, a type hierarchy, typed relations and
/// subject-relation-object facts, with the query surface the TURL tasks and
/// the table generator need. This is the stand-in for Freebase/DBpedia/
/// Wikidata in the paper (see DESIGN.md substitutions).
class KnowledgeBase {
 public:
  KnowledgeBase() = default;
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;
  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;

  /// Schema construction ------------------------------------------------
  TypeId AddType(const std::string& name, TypeId parent = kInvalidType);
  RelationId AddRelation(Relation relation);
  EntityId AddEntity(Entity entity);
  /// Records the fact (subject, relation, object); duplicate facts collapse.
  void AddFact(EntityId subject, RelationId relation, EntityId object);

  /// Lookups --------------------------------------------------------------
  int num_entities() const { return static_cast<int>(entities_.size()); }
  int num_types() const { return static_cast<int>(types_.size()); }
  int num_relations() const { return static_cast<int>(relations_.size()); }

  const Entity& entity(EntityId id) const;
  const EntityType& type(TypeId id) const;
  const Relation& relation(RelationId id) const;

  /// Id of the type/relation with this name, or the invalid sentinel.
  TypeId TypeByName(const std::string& name) const;
  RelationId RelationByName(const std::string& name) const;

  /// True if `e` has type `t` directly or via a subtype (pro_athlete counts
  /// as person).
  bool EntityHasType(EntityId e, TypeId t) const;

  /// All types of `e` expanded through the hierarchy (deduplicated).
  std::vector<TypeId> ExpandedTypes(EntityId e) const;

  /// Objects o with (s, r, o) in the KB; empty when none.
  const std::vector<EntityId>& Objects(EntityId s, RelationId r) const;

  /// Subjects s with (s, r, o) in the KB; empty when none.
  const std::vector<EntityId>& Subjects(RelationId r, EntityId o) const;

  /// All entities whose (direct) type list contains `t`.
  const std::vector<EntityId>& EntitiesOfType(TypeId t) const;

  /// All relations whose subject type is `t` (directly; no hierarchy walk).
  std::vector<RelationId> RelationsWithSubjectType(TypeId t) const;

  /// Number of stored facts.
  int64_t num_facts() const { return num_facts_; }

  /// All facts as (subject, relation, object) triples, sorted by
  /// (relation, subject, object) for deterministic iteration.
  std::vector<std::tuple<EntityId, RelationId, EntityId>> AllFacts() const;

 private:
  std::vector<EntityType> types_;
  std::vector<Relation> relations_;
  std::vector<Entity> entities_;
  std::unordered_map<std::string, TypeId> type_by_name_;
  std::unordered_map<std::string, RelationId> relation_by_name_;
  /// facts_fwd_[r][s] -> objects; facts_rev_[r][o] -> subjects.
  std::vector<std::unordered_map<EntityId, std::vector<EntityId>>> facts_fwd_;
  std::vector<std::unordered_map<EntityId, std::vector<EntityId>>> facts_rev_;
  std::vector<std::vector<EntityId>> entities_by_type_;
  int64_t num_facts_ = 0;
};

}  // namespace kb
}  // namespace turl

#endif  // TURL_KB_KB_H_
