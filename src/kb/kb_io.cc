#include "kb/kb_io.h"

#include "util/serialize.h"

namespace turl {
namespace kb {

namespace {
constexpr uint32_t kKbMagic = 0x544B4231u;  // "TKB1"
}  // namespace

Status SaveKnowledgeBase(const KnowledgeBase& kb, const std::string& path) {
  BinaryWriter w(path);
  w.WriteU32(kKbMagic);

  w.WriteU32(static_cast<uint32_t>(kb.num_types()));
  for (TypeId t = 0; t < kb.num_types(); ++t) {
    const EntityType& type = kb.type(t);
    w.WriteString(type.name);
    w.WriteI64(type.parent);
  }

  w.WriteU32(static_cast<uint32_t>(kb.num_relations()));
  for (RelationId r = 0; r < kb.num_relations(); ++r) {
    const Relation& rel = kb.relation(r);
    w.WriteString(rel.name);
    w.WriteI64(rel.subject_type);
    w.WriteI64(rel.object_type);
    w.WriteStringVector(rel.header_surfaces);
    w.WriteU32(rel.functional ? 1 : 0);
  }

  w.WriteU32(static_cast<uint32_t>(kb.num_entities()));
  for (EntityId e = 0; e < kb.num_entities(); ++e) {
    const Entity& ent = kb.entity(e);
    w.WriteString(ent.name);
    w.WriteStringVector(ent.aliases);
    w.WriteString(ent.description);
    w.WriteU32(static_cast<uint32_t>(ent.types.size()));
    for (TypeId t : ent.types) w.WriteI64(t);
    w.WriteDouble(ent.popularity);
  }

  const auto facts = kb.AllFacts();
  w.WriteU64(facts.size());
  for (const auto& [s, r, o] : facts) {
    w.WriteI64(s);
    w.WriteI64(r);
    w.WriteI64(o);
  }
  return w.Close();
}

Result<KnowledgeBase> LoadKnowledgeBase(const std::string& path) {
  BinaryReader reader(path);
  if (!reader.status().ok()) return reader.status();
  if (reader.ReadU32() != kKbMagic) return Status::IoError("bad KB magic");

  KnowledgeBase kb;
  const uint32_t num_types = reader.ReadU32();
  if (!reader.status().ok() || num_types > (1u << 20)) {
    return Status::IoError("corrupt KB: type count");
  }
  for (uint32_t i = 0; i < num_types; ++i) {
    const std::string name = reader.ReadString();
    const TypeId parent = static_cast<TypeId>(reader.ReadI64());
    if (!reader.status().ok()) return reader.status();
    kb.AddType(name, parent);
  }

  const uint32_t num_relations = reader.ReadU32();
  if (!reader.status().ok() || num_relations > (1u << 20)) {
    return Status::IoError("corrupt KB: relation count");
  }
  for (uint32_t i = 0; i < num_relations; ++i) {
    Relation rel;
    rel.name = reader.ReadString();
    rel.subject_type = static_cast<TypeId>(reader.ReadI64());
    rel.object_type = static_cast<TypeId>(reader.ReadI64());
    rel.header_surfaces = reader.ReadStringVector();
    rel.functional = reader.ReadU32() != 0;
    if (!reader.status().ok()) return reader.status();
    kb.AddRelation(std::move(rel));
  }

  const uint32_t num_entities = reader.ReadU32();
  if (!reader.status().ok() || num_entities > (1u << 26)) {
    return Status::IoError("corrupt KB: entity count");
  }
  for (uint32_t i = 0; i < num_entities; ++i) {
    Entity ent;
    ent.name = reader.ReadString();
    ent.aliases = reader.ReadStringVector();
    ent.description = reader.ReadString();
    const uint32_t nt = reader.ReadU32();
    if (!reader.status().ok() || nt > (1u << 10)) {
      return Status::IoError("corrupt KB: entity types");
    }
    for (uint32_t t = 0; t < nt; ++t) {
      ent.types.push_back(static_cast<TypeId>(reader.ReadI64()));
    }
    ent.popularity = reader.ReadDouble();
    if (!reader.status().ok()) return reader.status();
    kb.AddEntity(std::move(ent));
  }

  const uint64_t num_facts = reader.ReadU64();
  if (!reader.status().ok() || num_facts > (1ull << 32)) {
    return Status::IoError("corrupt KB: fact count");
  }
  for (uint64_t i = 0; i < num_facts; ++i) {
    const EntityId s = static_cast<EntityId>(reader.ReadI64());
    const RelationId r = static_cast<RelationId>(reader.ReadI64());
    const EntityId o = static_cast<EntityId>(reader.ReadI64());
    if (!reader.status().ok()) return reader.status();
    if (s < 0 || s >= kb.num_entities() || o < 0 || o >= kb.num_entities() ||
        r < 0 || r >= kb.num_relations()) {
      return Status::IoError("corrupt KB: fact ids out of range");
    }
    kb.AddFact(s, r, o);
  }
  if (!reader.status().ok()) return reader.status();
  return kb;
}

}  // namespace kb
}  // namespace turl
