#include "tasks/cell_filling.h"

#include <algorithm>

#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "tasks/task_head.h"
#include "text/vocab.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace turl {
namespace tasks {

std::vector<CellFillInstance> BuildCellFillInstances(
    const core::TurlContext& ctx, const baselines::CellFillingIndex& index,
    const std::vector<size_t>& table_indices, int min_valid_pairs,
    int max_instances, bool filter_by_header) {
  std::vector<CellFillInstance> out;
  for (size_t idx : table_indices) {
    const data::Table& t = ctx.corpus.tables[idx];
    if (t.columns.empty() || !t.columns[0].is_entity_column) continue;
    for (int c = 1; c < t.num_columns(); ++c) {
      const data::Column& col = t.columns[size_t(c)];
      if (!col.is_entity_column) continue;
      // Count valid (subject, object) pairs in this column pair.
      std::vector<int> valid_rows;
      for (int r = 0; r < t.num_rows(); ++r) {
        if (t.columns[0].cells[size_t(r)].linked() &&
            col.cells[size_t(r)].linked()) {
          valid_rows.push_back(r);
        }
      }
      if (static_cast<int>(valid_rows.size()) < min_valid_pairs) continue;
      for (int r : valid_rows) {
        CellFillInstance inst;
        inst.table_index = idx;
        inst.object_column = c;
        inst.row = r;
        inst.subject = t.columns[0].cells[size_t(r)].entity;
        inst.gold = col.cells[size_t(r)].entity;
        inst.candidates = filter_by_header
                              ? index.CandidatesFor(inst.subject, col.header)
                              : index.CandidatesFor(inst.subject);
        out.push_back(std::move(inst));
        if (max_instances > 0 &&
            static_cast<int>(out.size()) >= max_instances) {
          return out;
        }
      }
    }
  }
  return out;
}

CellFillCandidateStats ComputeCandidateStats(
    const std::vector<CellFillInstance>& instances) {
  CellFillCandidateStats stats;
  stats.num_instances = static_cast<int64_t>(instances.size());
  if (instances.empty()) return stats;
  int64_t reachable = 0;
  double total_candidates = 0;
  for (const CellFillInstance& inst : instances) {
    total_candidates += double(inst.candidates.size());
    for (const baselines::CellCandidate& cand : inst.candidates) {
      if (cand.entity == inst.gold) {
        ++reachable;
        break;
      }
    }
  }
  stats.recall = double(reachable) / double(instances.size());
  stats.avg_candidates = total_candidates / double(instances.size());
  return stats;
}

CellFillResult EvaluateCellFilling(
    const std::vector<CellFillInstance>& instances,
    const std::vector<std::vector<double>>& scores) {
  TURL_CHECK_EQ(instances.size(), scores.size());
  CellFillResult result;
  std::vector<double> p1, p3, p5, p10;
  for (size_t i = 0; i < instances.size(); ++i) {
    const CellFillInstance& inst = instances[i];
    TURL_CHECK_EQ(scores[i].size(), inst.candidates.size());
    bool reachable = false;
    for (const auto& cand : inst.candidates) {
      if (cand.entity == inst.gold) {
        reachable = true;
        break;
      }
    }
    if (!reachable) continue;  // Paper evaluates reachable instances only.
    std::vector<size_t> order(inst.candidates.size());
    for (size_t j = 0; j < order.size(); ++j) order[j] = j;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return scores[i][a] > scores[i][b];
    });
    std::vector<bool> relevant(order.size());
    for (size_t rank = 0; rank < order.size(); ++rank) {
      relevant[rank] = inst.candidates[order[rank]].entity == inst.gold;
    }
    p1.push_back(eval::HitAtK(relevant, 1));
    p3.push_back(eval::HitAtK(relevant, 3));
    p5.push_back(eval::HitAtK(relevant, 5));
    p10.push_back(eval::HitAtK(relevant, 10));
  }
  result.evaluated = static_cast<int64_t>(p1.size());
  result.p_at_1 = eval::MeanOf(p1);
  result.p_at_3 = eval::MeanOf(p3);
  result.p_at_5 = eval::MeanOf(p5);
  result.p_at_10 = eval::MeanOf(p10);
  return result;
}

TurlCellFiller::TurlCellFiller(core::TurlModel* model,
                               const core::TurlContext* ctx)
    : model_(model), ctx_(ctx) {
  TURL_CHECK(model != nullptr);
}

core::EncodedTable TurlCellFiller::Encode(
    const CellFillInstance& instance) const {
  const data::Table& full = ctx_->corpus.tables[instance.table_index];
  // Partial table per Definition 6.5: metadata, the full subject column,
  // and the queried object column header with a [MASK] in the queried row.
  data::Table partial;
  partial.caption = full.caption;
  partial.topic_entity = full.topic_entity;
  partial.topic_mention = full.topic_mention;
  partial.columns.push_back(full.columns[0]);
  data::Column object;
  object.header = full.columns[size_t(instance.object_column)].header;
  object.is_entity_column = true;
  object.cells.assign(full.columns[0].cells.size(), data::EntityCell{});
  partial.columns.push_back(std::move(object));

  const text::WordPieceTokenizer tokenizer = ctx_->MakeTokenizer();
  core::EncodedTable encoded =
      core::EncodeTable(partial, tokenizer, ctx_->entity_vocab);
  // Every to-be-filled object cell is presented as a [MASK] entity — the
  // same distribution MER pre-training produces when it masks most of a
  // column. ScoresFrom finds the queried row's [MASK] by (column, row).
  for (int i = 0; i < encoded.num_entities(); ++i) {
    if (encoded.entity_column[size_t(i)] != 1) continue;
    encoded.entity_ids[size_t(i)] = data::EntityVocab::kMaskEntity;
    encoded.entity_mentions[size_t(i)] = {text::kMaskId};
  }
  return encoded;
}

std::vector<float> TurlCellFiller::ScoresFrom(
    const nn::Tensor& hidden, const core::EncodedTable& encoded,
    const CellFillInstance& instance) const {
  TURL_PROFILE_SCOPE("cellfill.score");
  obs::TraceSpan trace("task.score");
  if (trace.traced()) trace.Annotate("head", "cell_filling");
  static obs::Counter* queries =
      obs::MetricsRegistry::Get().GetCounter("cellfill.queries");
  queries->Inc();
  int mask_index = -1;
  for (int i = 0; i < encoded.num_entities(); ++i) {
    if (encoded.entity_column[size_t(i)] == 1 &&
        encoded.entity_row[size_t(i)] == instance.row) {
      mask_index = i;
      break;
    }
  }
  TURL_CHECK_GE(mask_index, 0);

  std::vector<int> candidate_ids;
  for (const baselines::CellCandidate& cand : instance.candidates) {
    candidate_ids.push_back(ctx_->entity_vocab.Id(cand.entity));
  }
  if (candidate_ids.empty()) return {};

  nn::Tensor logits = model_->MerLogits(
      hidden, {core::TurlModel::EntityHiddenRow(encoded, mask_index)},
      candidate_ids, core::Scoring::kServe);
  std::vector<float> out;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const bool oov = candidate_ids[size_t(i)] == data::EntityVocab::kUnkEntity;
    out.push_back(logits.at(i) - (oov ? 1e3f : 0.f));
  }
  return out;
}

std::vector<float> TurlCellFiller::Scores(
    const CellFillInstance& instance) const {
  if (instance.candidates.empty()) return {};
  core::EncodedTable encoded = Encode(instance);
  nn::Tensor hidden = model_->Encode(encoded, /*training=*/false);
  return ScoresFrom(hidden, encoded, instance);
}

std::vector<size_t> TurlCellFiller::PredictFrom(
    const nn::Tensor& hidden, const core::EncodedTable& encoded,
    const CellFillInstance& instance) const {
  std::vector<float> scores = ScoresFrom(hidden, encoded, instance);
  return TopK(scores, scores.size());
}

std::vector<size_t> TurlCellFiller::Predict(
    const CellFillInstance& instance) const {
  if (instance.candidates.empty()) return {};
  core::EncodedTable encoded = Encode(instance);
  nn::Tensor hidden = model_->Encode(encoded, /*training=*/false);
  return PredictFrom(hidden, encoded, instance);
}

CellFillResult TurlCellFiller::Evaluate(
    const std::vector<CellFillInstance>& instances,
    const rt::InferenceSession* session) const {
  std::vector<std::vector<float>> scores;
  if (session != nullptr) {
    scores = BulkScores(*this, instances, *session);
  } else {
    scores.reserve(instances.size());
    for (const CellFillInstance& inst : instances) {
      scores.push_back(Scores(inst));
    }
  }
  return EvaluateCellFilling(instances, AsDouble(scores));
}

}  // namespace tasks
}  // namespace turl
