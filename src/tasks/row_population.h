#ifndef TURL_TASKS_ROW_POPULATION_H_
#define TURL_TASKS_ROW_POPULATION_H_

#include <memory>
#include <vector>

#include "baselines/row_population.h"
#include "core/context.h"
#include "core/model.h"
#include "tasks/common.h"

namespace turl {
namespace tasks {

/// One row-population query (Definition 6.4): a table's metadata, the first
/// `seeds.size()` subject entities as seeds (0 or 1 in the paper's
/// experiments), the remaining subject entities as gold, and the shared
/// candidate set.
struct RowPopInstance {
  size_t table_index = 0;
  std::vector<kb::EntityId> seeds;
  std::vector<kb::EntityId> gold;
  std::vector<kb::EntityId> candidates;
};

/// Builds queries with exactly `num_seeds` seeds over the given tables;
/// tables with fewer than `min_subjects` linked subject entities are
/// skipped. Candidates come from `generator` (the module shared by every
/// method).
std::vector<RowPopInstance> BuildRowPopInstances(
    const core::TurlContext& ctx,
    const baselines::RowPopCandidateGenerator& generator,
    const std::vector<size_t>& table_indices, int num_seeds,
    int min_subjects, int max_instances = 0);

/// MAP and candidate-set recall for a scoring function evaluated over
/// instances. Recall is a property of the shared candidate generator, so it
/// is identical across methods (as in Table 8).
struct RowPopMetrics {
  double map = 0.0;
  double recall = 0.0;
};
RowPopMetrics EvaluateRowPopScores(
    const std::vector<RowPopInstance>& instances,
    const std::vector<std::vector<double>>& scores);

/// TURL fine-tuned for row population (§6.5): the partial table (metadata +
/// seed subject cells) is encoded with an appended [MASK] entity whose
/// contextualized state ranks candidates via Eqn. 13 (multi-label binary
/// cross-entropy over the candidate set).
class TurlRowPopulator {
 public:
  TurlRowPopulator(core::TurlModel* model, const core::TurlContext* ctx);

  /// Fine-tunes on training queries (mixing 0- and 1-seed instances).
  void Finetune(const std::vector<RowPopInstance>& train,
                const FinetuneOptions& options);

  /// TaskHead API (see tasks/task_head.h) -------------------------------

  /// Model input for one query: metadata + seed subject cells + a trailing
  /// [MASK] subject cell. The mask is always the encoding's last entity.
  core::EncodedTable Encode(const RowPopInstance& instance) const;

  /// Candidate scores for one query (parallel to instance.candidates);
  /// out-of-vocabulary candidates are pushed below every in-vocabulary one.
  std::vector<float> Scores(const RowPopInstance& instance) const;
  std::vector<float> ScoresFrom(const nn::Tensor& hidden,
                                const core::EncodedTable& encoded,
                                const RowPopInstance& instance) const;

  /// Candidates ranked best-first (indices into instance.candidates).
  std::vector<size_t> Predict(const RowPopInstance& instance) const;
  std::vector<size_t> PredictFrom(const nn::Tensor& hidden,
                                  const core::EncodedTable& encoded,
                                  const RowPopInstance& instance) const;

  /// MAP + recall over queries; a session batches the forwards.
  RowPopMetrics Evaluate(const std::vector<RowPopInstance>& instances,
                         const rt::InferenceSession* session = nullptr) const;

 private:
  /// Encodes metadata + seeds + trailing [MASK] subject cell; returns the
  /// encoded table, with the [MASK]'s entity index in *mask_index.
  core::EncodedTable EncodeQueryImpl(const RowPopInstance& instance,
                                     int* mask_index) const;
  nn::Tensor CandidateLogits(const nn::Tensor& hidden,
                             const core::EncodedTable& encoded, int mask_index,
                             const std::vector<int>& candidate_ids,
                             core::Scoring scoring) const;

  core::TurlModel* model_;
  const core::TurlContext* ctx_;
};

}  // namespace tasks
}  // namespace turl

#endif  // TURL_TASKS_ROW_POPULATION_H_
