#include "tasks/common.h"

#include <cmath>

#include "data/entity_vocab.h"
#include "util/logging.h"
#include "util/status.h"

namespace turl {
namespace tasks {

double FinetuneStep(
    nn::Tensor loss, float grad_clip,
    std::initializer_list<std::pair<nn::ParamStore*, nn::Adam*>> items) {
  for (const auto& item : items) item.first->ZeroGrad();
  loss.Backward();
  double norm_sq = 0.0;
  for (const auto& item : items) {
    const double g = double(nn::ClipGradNorm(item.first, grad_clip));
    norm_sq += g * g;
  }
  for (const auto& item : items) item.second->Step();
  return std::sqrt(norm_sq);
}

FinetuneCheckpointer::FinetuneCheckpointer(
    const FinetuneOptions& options, const std::string& phase,
    std::vector<std::pair<std::string, nn::ParamStore*>> stores,
    std::vector<std::pair<std::string, nn::Adam*>> optims, Rng* rng,
    std::vector<size_t>* order)
    : stores_(std::move(stores)),
      optims_(std::move(optims)),
      rng_(rng),
      order_(order),
      save_every_(options.save_every),
      resume_(options.resume) {
  if (options.ckpt_dir.empty()) return;
  manager_ = std::make_unique<ckpt::CheckpointManager>(
      ckpt::CheckpointManager::Options{options.ckpt_dir, options.keep_last});
  // Deliberately excludes `epochs`: per-step behavior does not depend on the
  // epoch budget (no LR schedule here), so a finished epochs=N run may be
  // extended by resuming with a larger budget.
  fingerprint_ = "finetune." + phase + "|seed" + std::to_string(options.seed) +
                 "|lr" + std::to_string(options.lr) + "|mt" +
                 std::to_string(options.max_tables) + "|gc" +
                 std::to_string(options.grad_clip);
}

FinetuneCheckpointer::~FinetuneCheckpointer() = default;

ckpt::TrainState FinetuneCheckpointer::Bind() const {
  ckpt::TrainState st;
  st.stores = stores_;
  st.optims = optims_;
  st.rng = rng_;
  st.fingerprint = fingerprint_;
  return st;
}

int FinetuneCheckpointer::Resume(int64_t* global_step) {
  if (manager_ == nullptr || !resume_) return 0;
  ckpt::TrainState st = Bind();
  const Status s = manager_->LoadLatest(&st);
  if (!s.ok()) {
    if (s.code() != StatusCode::kNotFound) {
      TURL_LOG(Warning) << "no usable finetune checkpoint ("
                        << s.ToString() << "); starting fresh";
    }
    return 0;
  }
  if (order_ != nullptr) {
    TURL_CHECK_EQ(st.order.size(), order_->size())
        << "checkpoint order covers a different dataset";
    for (size_t i = 0; i < order_->size(); ++i) {
      (*order_)[i] = size_t(st.order[i]);
    }
  }
  if (global_step != nullptr) *global_step = st.global_step;
  TURL_LOG(Info) << "resumed fine-tuning at epoch " << st.epoch << " (step "
                 << st.global_step << ")";
  return int(st.epoch);
}

void FinetuneCheckpointer::OnEpochEnd(int completed_epoch,
                                      int64_t global_step) {
  if (manager_ == nullptr || save_every_ <= 0) return;
  if ((completed_epoch + 1) % save_every_ != 0) return;
  ckpt::TrainState st = Bind();
  st.epoch = completed_epoch + 1;  // The epoch a resumed run starts at.
  st.global_step = global_step;
  if (order_ != nullptr) st.order.assign(order_->begin(), order_->end());
  const Status s = manager_->Save(st);
  if (!s.ok()) {
    TURL_LOG(Warning) << "finetune checkpoint save failed: " << s.ToString();
  }
}

void StripEntityIds(core::EncodedTable* table) {
  for (int& id : table->entity_ids) id = data::EntityVocab::kUnkEntity;
}

void StripMentions(core::EncodedTable* table) {
  for (auto& mention : table->entity_mentions) mention.clear();
}

void ApplyVariant(const InputVariant& variant, core::EncodedTable* table) {
  if (!variant.use_metadata) TURL_CHECK_EQ(table->num_tokens(), 0);
  if (!variant.use_entities) TURL_CHECK_EQ(table->num_entities(), 0);
  if (!variant.use_entity_ids) StripEntityIds(table);
  if (!variant.use_mentions) StripMentions(table);
}

core::EncodeOptions EncodeOptionsFor(const InputVariant& variant) {
  core::EncodeOptions opts;
  opts.include_metadata = variant.use_metadata;
  opts.include_entities = variant.use_entities;
  opts.include_topic_entity = variant.use_entities;
  return opts;
}

nn::Tensor ColumnHidden(const nn::Tensor& hidden,
                        const core::EncodedTable& encoded, int column,
                        int64_t d_model) {
  std::vector<int> header_rows;
  for (int i = 0; i < encoded.num_tokens(); ++i) {
    if (encoded.token_segment[size_t(i)] == core::kSegmentHeader &&
        encoded.token_column[size_t(i)] == column) {
      header_rows.push_back(i);
    }
  }
  std::vector<int> entity_rows;
  for (int i = 0; i < encoded.num_entities(); ++i) {
    if (encoded.entity_column[size_t(i)] == column) {
      entity_rows.push_back(core::TurlModel::EntityHiddenRow(encoded, i));
    }
  }
  nn::Tensor header_part = header_rows.empty()
                               ? nn::Tensor::Zeros({1, d_model})
                               : nn::RowsMean(hidden, header_rows);
  nn::Tensor entity_part = entity_rows.empty()
                               ? nn::Tensor::Zeros({1, d_model})
                               : nn::RowsMean(hidden, entity_rows);
  return nn::ConcatCols(header_part, entity_part);
}

std::vector<float> QuantizedHeadLogits(nn::kernels::QuantCache* cache,
                                       const nn::Linear& head,
                                       const nn::Tensor& features) {
  const nn::Tensor& w = head.weight();
  const int64_t in = w.dim(0);
  const int64_t out = w.dim(1);
  TURL_CHECK_EQ(features.dim(1), in);
  const nn::kernels::QuantizedMatrix& q = cache->Get(w.data(), out, in,
                                                     /*row_stride=*/1,
                                                     /*col_stride=*/out);
  std::vector<float> y(static_cast<size_t>(out));
  nn::kernels::QuantizedScore(q, features.data(), y.data());
  const float* b = head.bias().data();
  for (int64_t l = 0; l < out; ++l) y[static_cast<size_t>(l)] += b[l];
  return y;
}

std::vector<float> QuantizedEmbeddingScores(nn::kernels::QuantCache* cache,
                                            const nn::Tensor& table,
                                            const nn::Tensor& x) {
  const int64_t n = table.dim(0);
  const int64_t d = table.dim(1);
  TURL_CHECK_EQ(x.dim(1), d);
  const nn::kernels::QuantizedMatrix& q =
      cache->Get(table.data(), n, d, /*row_stride=*/d, /*col_stride=*/1);
  std::vector<float> y(static_cast<size_t>(n));
  nn::kernels::QuantizedScore(q, x.data(), y.data());
  return y;
}

}  // namespace tasks
}  // namespace turl
