#include "tasks/common.h"

#include "data/entity_vocab.h"
#include "util/logging.h"

namespace turl {
namespace tasks {

void StripEntityIds(core::EncodedTable* table) {
  for (int& id : table->entity_ids) id = data::EntityVocab::kUnkEntity;
}

void StripMentions(core::EncodedTable* table) {
  for (auto& mention : table->entity_mentions) mention.clear();
}

void ApplyVariant(const InputVariant& variant, core::EncodedTable* table) {
  if (!variant.use_metadata) TURL_CHECK_EQ(table->num_tokens(), 0);
  if (!variant.use_entities) TURL_CHECK_EQ(table->num_entities(), 0);
  if (!variant.use_entity_ids) StripEntityIds(table);
  if (!variant.use_mentions) StripMentions(table);
}

core::EncodeOptions EncodeOptionsFor(const InputVariant& variant) {
  core::EncodeOptions opts;
  opts.include_metadata = variant.use_metadata;
  opts.include_entities = variant.use_entities;
  opts.include_topic_entity = variant.use_entities;
  return opts;
}

nn::Tensor ColumnHidden(const nn::Tensor& hidden,
                        const core::EncodedTable& encoded, int column,
                        int64_t d_model) {
  std::vector<int> header_rows;
  for (int i = 0; i < encoded.num_tokens(); ++i) {
    if (encoded.token_segment[size_t(i)] == core::kSegmentHeader &&
        encoded.token_column[size_t(i)] == column) {
      header_rows.push_back(i);
    }
  }
  std::vector<int> entity_rows;
  for (int i = 0; i < encoded.num_entities(); ++i) {
    if (encoded.entity_column[size_t(i)] == column) {
      entity_rows.push_back(core::TurlModel::EntityHiddenRow(encoded, i));
    }
  }
  nn::Tensor header_part = header_rows.empty()
                               ? nn::Tensor::Zeros({1, d_model})
                               : nn::RowsMean(hidden, header_rows);
  nn::Tensor entity_part = entity_rows.empty()
                               ? nn::Tensor::Zeros({1, d_model})
                               : nn::RowsMean(hidden, entity_rows);
  return nn::ConcatCols(header_part, entity_part);
}

}  // namespace tasks
}  // namespace turl
