#ifndef TURL_TASKS_CELL_FILLING_H_
#define TURL_TASKS_CELL_FILLING_H_

#include <string>
#include <vector>

#include "baselines/cell_filling.h"
#include "core/context.h"
#include "core/model.h"
#include "tasks/common.h"

namespace turl {
namespace tasks {

/// One cell-filling query (Definition 6.5): a row's subject entity, the
/// object column's header, the gold object entity, and the shared candidate
/// set (with the source headers the baselines need).
struct CellFillInstance {
  size_t table_index = 0;
  int object_column = 0;
  int row = 0;
  kb::EntityId subject = kb::kInvalidEntity;
  kb::EntityId gold = kb::kInvalidEntity;
  std::vector<baselines::CellCandidate> candidates;
};

/// Builds queries over subject–object column pairs of the given tables that
/// have at least `min_valid_pairs` rows with both cells linked. Candidates
/// come from `index`: all entities co-occurring with the subject in some
/// training-table row (the unfiltered candidate set of §6.6; rankers then
/// use the header information to order it — pass `filter_by_header` to get
/// the P(h'|h) > 0 filtered variant instead).
std::vector<CellFillInstance> BuildCellFillInstances(
    const core::TurlContext& ctx, const baselines::CellFillingIndex& index,
    const std::vector<size_t>& table_indices, int min_valid_pairs = 3,
    int max_instances = 0, bool filter_by_header = false);

/// Candidate-set statistics (recall of the finding module, average size) —
/// the numbers quoted in §6.6's "candidate value finding" paragraph.
struct CellFillCandidateStats {
  double recall = 0.0;
  double avg_candidates = 0.0;
  int64_t num_instances = 0;
};
CellFillCandidateStats ComputeCandidateStats(
    const std::vector<CellFillInstance>& instances);

/// P@K for a scoring method over the instances whose candidate set contains
/// the gold entity (the paper's evaluation protocol).
struct CellFillResult {
  double p_at_1 = 0.0;
  double p_at_3 = 0.0;
  double p_at_5 = 0.0;
  double p_at_10 = 0.0;
  int64_t evaluated = 0;
};
/// `scores[i]` is parallel to instances[i].candidates.
CellFillResult EvaluateCellFilling(
    const std::vector<CellFillInstance>& instances,
    const std::vector<std::vector<double>>& scores);

/// TURL cell filling (§6.6): no fine-tuning — the pre-trained model encodes
/// the partial table (metadata + subject column + the object header) with a
/// [MASK] entity in the queried cell and ranks candidates with the MER head
/// (Eqn. 6).
class TurlCellFiller {
 public:
  TurlCellFiller(core::TurlModel* model, const core::TurlContext* ctx);

  /// TaskHead API (see tasks/task_head.h) -------------------------------

  /// Model input for one query: metadata + subject column + the object
  /// header, every object cell presented as a [MASK] entity; the queried
  /// row's [MASK] is the one ScoresFrom reads out.
  core::EncodedTable Encode(const CellFillInstance& instance) const;

  /// Candidate scores (parallel to instance.candidates, empty when it is);
  /// out-of-vocabulary candidates are pushed below in-vocabulary ones.
  std::vector<float> Scores(const CellFillInstance& instance) const;
  std::vector<float> ScoresFrom(const nn::Tensor& hidden,
                                const core::EncodedTable& encoded,
                                const CellFillInstance& instance) const;

  /// Candidates ranked best-first (indices into instance.candidates).
  std::vector<size_t> Predict(const CellFillInstance& instance) const;
  std::vector<size_t> PredictFrom(const nn::Tensor& hidden,
                                  const core::EncodedTable& encoded,
                                  const CellFillInstance& instance) const;

  /// P@K over queries; a session batches the forwards.
  CellFillResult Evaluate(const std::vector<CellFillInstance>& instances,
                          const rt::InferenceSession* session = nullptr) const;

 private:
  core::TurlModel* model_;
  const core::TurlContext* ctx_;
};

}  // namespace tasks
}  // namespace turl

#endif  // TURL_TASKS_CELL_FILLING_H_
