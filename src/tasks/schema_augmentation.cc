#include "tasks/schema_augmentation.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "eval/metrics.h"
#include "nn/optim.h"
#include "obs/trace.h"
#include "tasks/task_head.h"
#include "text/vocab.h"
#include "util/logging.h"
#include "util/math_util.h"
#include "util/string_util.h"

namespace turl {
namespace tasks {

int HeaderVocab::Id(const std::string& header) const {
  auto it = ids.find(NormalizeSurface(header));
  return it == ids.end() ? -1 : it->second;
}

HeaderVocab BuildHeaderVocab(const core::TurlContext& ctx, int min_tables) {
  std::map<std::string, int> counts;  // Ordered for determinism.
  for (size_t idx : ctx.corpus.train) {
    std::unordered_set<std::string> in_table;
    for (const data::Column& col : ctx.corpus.tables[idx].columns) {
      in_table.insert(NormalizeSurface(col.header));
    }
    for (const std::string& h : in_table) {
      if (!h.empty()) ++counts[h];
    }
  }
  HeaderVocab vocab;
  for (const auto& [h, c] : counts) {
    if (c >= min_tables) {
      vocab.ids.emplace(h, vocab.size());
      vocab.headers.push_back(h);
    }
  }
  return vocab;
}

std::vector<SchemaAugInstance> BuildSchemaAugInstances(
    const core::TurlContext& ctx, const HeaderVocab& vocab,
    const std::vector<size_t>& table_indices, int num_seeds,
    int max_instances) {
  std::vector<SchemaAugInstance> out;
  for (size_t idx : table_indices) {
    const data::Table& t = ctx.corpus.tables[idx];
    std::vector<int> header_ids;
    for (const data::Column& col : t.columns) {
      const int id = vocab.Id(col.header);
      if (id >= 0 &&
          std::find(header_ids.begin(), header_ids.end(), id) ==
              header_ids.end()) {
        header_ids.push_back(id);
      }
    }
    if (static_cast<int>(header_ids.size()) <= num_seeds) continue;
    SchemaAugInstance inst;
    inst.table_index = idx;
    inst.seed_headers.assign(header_ids.begin(),
                             header_ids.begin() + num_seeds);
    inst.gold_headers.assign(header_ids.begin() + num_seeds,
                             header_ids.end());
    out.push_back(std::move(inst));
    if (max_instances > 0 && static_cast<int>(out.size()) >= max_instances) {
      break;
    }
  }
  return out;
}

double EvaluateSchemaAugmentation(
    const std::vector<SchemaAugInstance>& instances,
    const std::vector<std::vector<int>>& rankings) {
  TURL_CHECK_EQ(instances.size(), rankings.size());
  std::vector<double> aps;
  for (size_t i = 0; i < instances.size(); ++i) {
    std::unordered_set<int> gold(instances[i].gold_headers.begin(),
                                 instances[i].gold_headers.end());
    std::vector<bool> relevant(rankings[i].size());
    for (size_t rank = 0; rank < rankings[i].size(); ++rank) {
      relevant[rank] = gold.count(rankings[i][rank]) > 0;
    }
    aps.push_back(eval::AveragePrecision(
        relevant, static_cast<int64_t>(gold.size())));
  }
  return eval::MeanOf(aps);
}

TurlSchemaAugmenter::TurlSchemaAugmenter(core::TurlModel* model,
                                         const core::TurlContext* ctx,
                                         const HeaderVocab* vocab,
                                         uint64_t seed)
    : model_(model), ctx_(ctx), vocab_(vocab) {
  TURL_CHECK(model != nullptr);
  TURL_CHECK(vocab != nullptr);
  Rng rng(seed);
  const int64_t d = model->config().d_model;
  header_emb_ = std::make_unique<nn::Embedding>(
      &head_params_, "schema_header_emb", vocab->size(), d, &rng);
  project_ =
      std::make_unique<nn::Linear>(&head_params_, "schema_project", d, d, &rng);
}

core::EncodedTable TurlSchemaAugmenter::EncodeQueryImpl(
    const SchemaAugInstance& instance, int* mask_token_row) const {
  const data::Table& full = ctx_->corpus.tables[instance.table_index];
  data::Table partial;
  partial.caption = full.caption;
  partial.topic_entity = full.topic_entity;
  partial.topic_mention = full.topic_mention;
  for (size_t s = 0; s < instance.seed_headers.size(); ++s) {
    data::Column col;
    col.header = vocab_->headers[size_t(instance.seed_headers[s])];
    partial.columns.push_back(std::move(col));
  }

  const text::WordPieceTokenizer tokenizer = ctx_->MakeTokenizer();
  core::EncodedTable encoded =
      core::EncodeTable(partial, tokenizer, ctx_->entity_vocab);
  // Append the [MASK] token as a pseudo-header in a fresh column.
  *mask_token_row = encoded.num_tokens();
  encoded.token_ids.push_back(text::kMaskId);
  encoded.token_segment.push_back(core::kSegmentHeader);
  encoded.token_position.push_back(0);
  encoded.token_column.push_back(
      static_cast<int>(instance.seed_headers.size()));
  return encoded;
}

nn::Tensor TurlSchemaAugmenter::HeaderLogits(const nn::Tensor& hidden,
                                             int mask_token_row) const {
  nn::Tensor projected =
      project_->Forward(nn::SelectRows(hidden, {mask_token_row}));
  return nn::MatMulNT(projected, header_emb_->weight());
}

void TurlSchemaAugmenter::Finetune(const std::vector<SchemaAugInstance>& train,
                                   const FinetuneOptions& options) {
  Rng rng(options.seed);
  nn::Adam model_adam(model_->params(), nn::AdamConfig{.lr = options.lr});
  nn::Adam head_adam(&head_params_, nn::AdamConfig{.lr = options.lr});
  obs::FinetuneTelemetry telemetry("finetune.schema_augmentation",
                                   options.sink);
  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  FinetuneCheckpointer ckptr(
      options, "schema_augmentation",
      {{"model", model_->params()}, {"head", &head_params_}},
      {{"model_adam", &model_adam}, {"head_adam", &head_adam}}, &rng,
      &order);
  const int start_epoch = ckptr.Resume();
  // Resume may have swapped in checkpointed weights, and the loop below
  // trains both stores: any int8 pack is stale on entry and on exit.
  header_quant_.Invalidate();
  model_->InvalidateQuantizedScoring();

  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    size_t limit = order.size();
    if (options.max_tables > 0) {
      limit = std::min(limit, static_cast<size_t>(options.max_tables));
    }
    for (size_t oi = 0; oi < limit; ++oi) {
      const SchemaAugInstance& inst = train[order[oi]];
      int mask_row = -1;
      core::EncodedTable encoded = EncodeQueryImpl(inst, &mask_row);
      nn::Tensor hidden = model_->Encode(encoded, /*training=*/true, &rng);
      nn::Tensor logits = HeaderLogits(hidden, mask_row);
      std::vector<float> targets(static_cast<size_t>(vocab_->size()), 0.f);
      for (int h : inst.gold_headers) targets[size_t(h)] = 1.f;
      nn::Tensor loss = nn::BceWithLogits(logits, targets);
      const double grad_norm = FinetuneStep(
          loss, options.grad_clip,
          {{model_->params(), &model_adam}, {&head_params_, &head_adam}});
      telemetry.Step(loss.item(), grad_norm);
    }
    telemetry.EndEpoch(epoch);
    ckptr.OnEpochEnd(epoch);
  }
  header_quant_.Invalidate();
  model_->InvalidateQuantizedScoring();
}

core::EncodedTable TurlSchemaAugmenter::Encode(
    const SchemaAugInstance& instance) const {
  int mask_row = -1;
  core::EncodedTable encoded = EncodeQueryImpl(instance, &mask_row);
  TURL_CHECK_EQ(mask_row, encoded.num_tokens() - 1);
  return encoded;
}

std::vector<float> TurlSchemaAugmenter::ScoresFrom(
    const nn::Tensor& hidden, const core::EncodedTable& encoded,
    const SchemaAugInstance& instance) const {
  (void)instance;  // Scores rank the whole header vocabulary.
  obs::TraceSpan trace("task.score");
  if (trace.traced()) trace.Annotate("head", "schema_augmentation");
  // Encode() appends the [MASK] pseudo-header as the last token.
  const int mask_row = encoded.num_tokens() - 1;
  if (nn::kernels::QuantScoringEnabled()) {
    return QuantizedEmbeddingScores(
        &header_quant_, header_emb_->weight(),
        project_->Forward(nn::SelectRows(hidden, {mask_row})));
  }
  return HeaderLogits(hidden, mask_row).ToVector();
}

std::vector<float> TurlSchemaAugmenter::Scores(
    const SchemaAugInstance& instance) const {
  core::EncodedTable encoded = Encode(instance);
  nn::Tensor hidden = model_->Encode(encoded, /*training=*/false);
  return ScoresFrom(hidden, encoded, instance);
}

std::vector<int> TurlSchemaAugmenter::PredictFrom(
    const nn::Tensor& hidden, const core::EncodedTable& encoded,
    const SchemaAugInstance& instance) const {
  std::vector<float> scores = ScoresFrom(hidden, encoded, instance);
  std::unordered_set<int> seeds(instance.seed_headers.begin(),
                                instance.seed_headers.end());
  std::vector<int> out;
  for (size_t idx : TopK(scores, scores.size())) {
    if (!seeds.count(static_cast<int>(idx))) {
      out.push_back(static_cast<int>(idx));
    }
  }
  return out;
}

std::vector<int> TurlSchemaAugmenter::Predict(
    const SchemaAugInstance& instance) const {
  core::EncodedTable encoded = Encode(instance);
  nn::Tensor hidden = model_->Encode(encoded, /*training=*/false);
  return PredictFrom(hidden, encoded, instance);
}

double TurlSchemaAugmenter::Evaluate(
    const std::vector<SchemaAugInstance>& instances,
    const rt::InferenceSession* session) const {
  std::vector<std::vector<int>> rankings;
  if (session != nullptr) {
    rankings = BulkPredict<std::vector<int>>(*this, instances, *session);
  } else {
    rankings.reserve(instances.size());
    for (const SchemaAugInstance& inst : instances) {
      rankings.push_back(Predict(inst));
    }
  }
  return EvaluateSchemaAugmentation(instances, rankings);
}

}  // namespace tasks
}  // namespace turl
