#include "tasks/relation_extraction.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "nn/optim.h"
#include "obs/trace.h"
#include "tasks/task_head.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace turl {
namespace tasks {

RelationDataset BuildRelationDataset(const core::TurlContext& ctx,
                                     int min_label_count) {
  // Gather raw (table, column, relation) triples per split.
  struct Raw {
    size_t table_index;
    int column;
    kb::RelationId relation;
  };
  auto gather = [&](const std::vector<size_t>& indices) {
    std::vector<Raw> out;
    for (size_t idx : indices) {
      const data::Table& t = ctx.corpus.tables[idx];
      for (int c = 1; c < t.num_columns(); ++c) {
        const data::Column& col = t.columns[size_t(c)];
        if (!col.is_entity_column || col.relation == kb::kInvalidRelation) {
          continue;
        }
        out.push_back({idx, c, col.relation});
      }
    }
    return out;
  };
  std::vector<Raw> raw_train = gather(ctx.corpus.train);
  std::vector<Raw> raw_valid = gather(ctx.corpus.valid);
  std::vector<Raw> raw_test = gather(ctx.corpus.test);

  std::map<kb::RelationId, int> counts;
  for (const Raw& r : raw_train) ++counts[r.relation];

  RelationDataset dataset;
  std::map<kb::RelationId, int> label_of;
  for (const auto& [rel, count] : counts) {
    if (count >= min_label_count) {
      label_of[rel] = static_cast<int>(dataset.label_names.size());
      dataset.label_names.push_back(ctx.world.kb.relation(rel).name);
    }
  }
  auto materialize = [&](const std::vector<Raw>& raw,
                         std::vector<RelationInstance>* out) {
    for (const Raw& r : raw) {
      auto it = label_of.find(r.relation);
      if (it == label_of.end()) continue;
      out->push_back({r.table_index, r.column, it->second});
    }
  };
  materialize(raw_train, &dataset.train);
  materialize(raw_valid, &dataset.valid);
  materialize(raw_test, &dataset.test);
  return dataset;
}

TurlRelationExtractor::TurlRelationExtractor(core::TurlModel* model,
                                             const core::TurlContext* ctx,
                                             const RelationDataset* dataset,
                                             InputVariant variant,
                                             uint64_t seed)
    : model_(model), ctx_(ctx), dataset_(dataset), variant_(variant) {
  TURL_CHECK(model != nullptr);
  Rng rng(seed);
  head_ = std::make_unique<nn::Linear>(&head_params_, "relation_head",
                                       4 * model->config().d_model,
                                       dataset->num_labels(), &rng);
}

core::EncodedTable TurlRelationExtractor::EncodeTableIndex(
    size_t table_index) const {
  const text::WordPieceTokenizer tokenizer = ctx_->MakeTokenizer();
  core::EncodedTable encoded =
      core::EncodeTable(ctx_->corpus.tables[table_index], tokenizer,
                        ctx_->entity_vocab, EncodeOptionsFor(variant_));
  ApplyVariant(variant_, &encoded);
  return encoded;
}

nn::Tensor TurlRelationExtractor::PairLogits(const nn::Tensor& hidden,
                                             const core::EncodedTable& encoded,
                                             int object_column) const {
  const int64_t d = model_->config().d_model;
  nn::Tensor subject = ColumnHidden(hidden, encoded, 0, d);
  nn::Tensor object = ColumnHidden(hidden, encoded, object_column, d);
  return head_->Forward(nn::ConcatCols(subject, object));
}

void TurlRelationExtractor::Finetune(
    const FinetuneOptions& options, int64_t eval_every,
    const std::function<void(int64_t, double)>& step_callback) {
  std::map<size_t, std::vector<const RelationInstance*>> by_table;
  for (const RelationInstance& inst : dataset_->train) {
    by_table[inst.table_index].push_back(&inst);
  }
  std::vector<size_t> tables;
  for (const auto& [idx, insts] : by_table) tables.push_back(idx);

  Rng rng(options.seed);
  nn::Adam model_adam(model_->params(), nn::AdamConfig{.lr = options.lr});
  nn::Adam head_adam(&head_params_, nn::AdamConfig{.lr = options.lr});
  obs::FinetuneTelemetry telemetry("finetune.relation_extraction",
                                   options.sink);
  FinetuneCheckpointer ckptr(
      options, "relation_extraction",
      {{"model", model_->params()}, {"head", &head_params_}},
      {{"model_adam", &model_adam}, {"head_adam", &head_adam}}, &rng,
      &tables);

  int64_t step = 0;
  const int start_epoch = ckptr.Resume(&step);
  // Resume may have swapped in checkpointed weights, and the loop below
  // trains both stores: any int8 pack is stale on entry and on exit.
  head_quant_.Invalidate();
  model_->InvalidateQuantizedScoring();
  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&tables);
    size_t limit = tables.size();
    if (options.max_tables > 0) {
      limit = std::min(limit, static_cast<size_t>(options.max_tables));
    }
    for (size_t ti = 0; ti < limit; ++ti) {
      const auto& instances = by_table[tables[ti]];
      core::EncodedTable encoded = EncodeTableIndex(tables[ti]);
      if (encoded.total() == 0) continue;
      nn::Tensor hidden = model_->Encode(encoded, /*training=*/true, &rng);
      std::vector<nn::Tensor> logit_rows;
      std::vector<float> targets;
      for (const RelationInstance* inst : instances) {
        logit_rows.push_back(PairLogits(hidden, encoded, inst->object_column));
        std::vector<float> row(static_cast<size_t>(dataset_->num_labels()),
                               0.f);
        row[size_t(inst->label)] = 1.f;
        targets.insert(targets.end(), row.begin(), row.end());
      }
      nn::Tensor logits = logit_rows.size() == 1 ? logit_rows[0]
                                                 : nn::ConcatRows(logit_rows);
      nn::Tensor loss = nn::BceWithLogits(logits, targets);
      const double grad_norm = FinetuneStep(
          loss, options.grad_clip,
          {{model_->params(), &model_adam}, {&head_params_, &head_adam}});
      ++step;
      telemetry.Step(loss.item(), grad_norm);
      if (eval_every > 0 && step_callback && step % eval_every == 0) {
        // Mid-train eval scores with the weights as of this step.
        head_quant_.Invalidate();
        model_->InvalidateQuantizedScoring();
        const double map =
            EvaluateMap(dataset_->valid, /*max_instances=*/150);
        telemetry.Eval("valid_map", map);
        step_callback(step, map);
      }
    }
    telemetry.EndEpoch(epoch);
    ckptr.OnEpochEnd(epoch, step);
  }
  head_quant_.Invalidate();
  model_->InvalidateQuantizedScoring();
}

core::EncodedTable TurlRelationExtractor::Encode(
    const RelationInstance& instance) const {
  return EncodeTableIndex(instance.table_index);
}

std::vector<float> TurlRelationExtractor::ScoresFrom(
    const nn::Tensor& hidden, const core::EncodedTable& encoded,
    const RelationInstance& instance) const {
  obs::TraceSpan trace("task.score");
  if (trace.traced()) trace.Annotate("head", "relation_extraction");
  if (nn::kernels::QuantScoringEnabled()) {
    const int64_t d = model_->config().d_model;
    std::vector<float> out = QuantizedHeadLogits(
        &head_quant_, *head_,
        nn::ConcatCols(ColumnHidden(hidden, encoded, 0, d),
                       ColumnHidden(hidden, encoded, instance.object_column,
                                    d)));
    for (float& v : out) v = 1.f / (1.f + std::exp(-v));
    return out;
  }
  nn::Tensor probs =
      nn::SigmoidOp(PairLogits(hidden, encoded, instance.object_column));
  return probs.ToVector();
}

std::vector<float> TurlRelationExtractor::Scores(
    const RelationInstance& instance) const {
  core::EncodedTable encoded = Encode(instance);
  nn::Tensor hidden = model_->Encode(encoded, /*training=*/false);
  return ScoresFrom(hidden, encoded, instance);
}

std::vector<int> TurlRelationExtractor::PredictFrom(
    const nn::Tensor& hidden, const core::EncodedTable& encoded,
    const RelationInstance& instance) const {
  std::vector<float> probs = ScoresFrom(hidden, encoded, instance);
  std::vector<int> out;
  for (int l = 0; l < dataset_->num_labels(); ++l) {
    if (probs[size_t(l)] > 0.5f) out.push_back(l);
  }
  return out;
}

std::vector<int> TurlRelationExtractor::Predict(
    const RelationInstance& instance) const {
  core::EncodedTable encoded = Encode(instance);
  nn::Tensor hidden = model_->Encode(encoded, /*training=*/false);
  return PredictFrom(hidden, encoded, instance);
}

eval::Prf TurlRelationExtractor::Evaluate(
    const std::vector<RelationInstance>& split,
    const rt::InferenceSession* session) const {
  eval::MicroPrf micro;
  if (session != nullptr) {
    std::vector<std::vector<int>> preds =
        BulkPredict<std::vector<int>>(*this, split, *session);
    for (size_t i = 0; i < split.size(); ++i) {
      micro.Add(preds[i], {split[i].label});
    }
  } else {
    for (const RelationInstance& inst : split) {
      micro.Add(Predict(inst), {inst.label});
    }
  }
  return micro.Compute();
}

double TurlRelationExtractor::EvaluateMap(
    const std::vector<RelationInstance>& split, int max_instances,
    const rt::InferenceSession* session) const {
  size_t limit = split.size();
  if (max_instances > 0) {
    limit = std::min(limit, static_cast<size_t>(max_instances));
  }
  std::vector<std::vector<float>> all_scores;
  if (session != nullptr) {
    std::vector<RelationInstance> head(split.begin(),
                                       split.begin() + ptrdiff_t(limit));
    all_scores = BulkScores(*this, head, *session);
  } else {
    all_scores.reserve(limit);
    for (size_t i = 0; i < limit; ++i) all_scores.push_back(Scores(split[i]));
  }
  std::vector<double> aps;
  for (size_t i = 0; i < limit; ++i) {
    const RelationInstance& inst = split[i];
    const std::vector<float>& scores = all_scores[i];
    std::vector<size_t> order = TopK(scores, scores.size());
    std::vector<bool> relevant(order.size(), false);
    for (size_t rank = 0; rank < order.size(); ++rank) {
      relevant[rank] = (static_cast<int>(order[rank]) == inst.label);
    }
    aps.push_back(eval::AveragePrecision(relevant, 1));
  }
  return eval::MeanOf(aps);
}

}  // namespace tasks
}  // namespace turl
