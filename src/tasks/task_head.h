#ifndef TURL_TASKS_TASK_HEAD_H_
#define TURL_TASKS_TASK_HEAD_H_

#include <vector>

#include "rt/bulk.h"
#include "rt/inference_session.h"

namespace turl {
namespace tasks {

/// TaskHead conventions
/// ====================
/// Every TURL task head (TurlEntityLinker, TurlColumnTyper,
/// TurlRelationExtractor, TurlRowPopulator, TurlCellFiller,
/// TurlSchemaAugmenter) exposes the same instance-level API:
///
///   Encode(instance)  -> core::EncodedTable
///       The head's model input for one instance: the (partial) table
///       linearization, mask elements included. Pure, does not touch the
///       model; safe to call from any thread.
///
///   Scores(instance)  -> std::vector<float>
///       Raw per-option scores for the instance's option set (candidates,
///       labels, or headers — whatever the task ranks). Higher is better.
///       Equivalent to ScoresFrom(model.Encode(Encode(instance)), ...).
///
///   Predict(instance) -> task decision
///       The task's natural decision derived from Scores: an EntityId for
///       entity linking, selected label ids for column typing / relation
///       extraction, and a best-first ranking for row population, cell
///       filling and schema augmentation.
///
///   ScoresFrom(hidden, encoded, instance) -> std::vector<float>
///       The scoring half of Scores, taking a precomputed forward. This is
///       the hook batched evaluation uses: encode all instances, run the
///       forwards through an rt::InferenceSession, then score.
///
/// All three are const and mutate nothing: the model reference inside a head
/// is read-only during scoring, randomness is per-call (see
/// core::TurlModel::Encode), so one head may serve many threads.
///
/// The helpers below run a head's instance set through an
/// rt::InferenceSession with deterministic, by-index output ordering. With a
/// single-threaded session they reproduce the sequential per-instance loop
/// bit for bit.

/// scores[i] = head.ScoresFrom(forward(head.Encode(instances[i])), ...).
template <typename Head, typename Instance>
std::vector<std::vector<float>> BulkScores(
    const Head& head, const std::vector<Instance>& instances,
    const rt::InferenceSession& session,
    rt::BatchSchedulerOptions batch_options = rt::BatchSchedulerOptions()) {
  return rt::BulkRun<std::vector<float>>(
      session, instances.size(),
      [&](size_t i) { return head.Encode(instances[i]); },
      [&](size_t i, const core::EncodedTable& encoded,
          const nn::Tensor& hidden) {
        return head.ScoresFrom(hidden, encoded, instances[i]);
      },
      batch_options);
}

/// out[i] = head.PredictFrom(forward(head.Encode(instances[i])), ...).
/// `Decision` is the head's Predict return type.
template <typename Decision, typename Head, typename Instance>
std::vector<Decision> BulkPredict(
    const Head& head, const std::vector<Instance>& instances,
    const rt::InferenceSession& session,
    rt::BatchSchedulerOptions batch_options = rt::BatchSchedulerOptions()) {
  return rt::BulkRun<Decision>(
      session, instances.size(),
      [&](size_t i) { return head.Encode(instances[i]); },
      [&](size_t i, const core::EncodedTable& encoded,
          const nn::Tensor& hidden) {
        return head.PredictFrom(hidden, encoded, instances[i]);
      },
      batch_options);
}

/// Widens per-instance float scores for the double-based Evaluate* entry
/// points that predate the unified API.
inline std::vector<std::vector<double>> AsDouble(
    const std::vector<std::vector<float>>& scores) {
  std::vector<std::vector<double>> out;
  out.reserve(scores.size());
  for (const std::vector<float>& row : scores) {
    out.emplace_back(row.begin(), row.end());
  }
  return out;
}

}  // namespace tasks
}  // namespace turl

#endif  // TURL_TASKS_TASK_HEAD_H_
