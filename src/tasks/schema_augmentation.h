#ifndef TURL_TASKS_SCHEMA_AUGMENTATION_H_
#define TURL_TASKS_SCHEMA_AUGMENTATION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/context.h"
#include "core/model.h"
#include "tasks/common.h"

namespace turl {
namespace tasks {

/// The header vocabulary H of Definition 6.6: normalized headers that occur
/// in at least `min_tables` training tables.
struct HeaderVocab {
  std::vector<std::string> headers;
  std::unordered_map<std::string, int> ids;

  int size() const { return static_cast<int>(headers.size()); }
  /// Id for a (raw or normalized) header; -1 when out of vocabulary.
  int Id(const std::string& header) const;
};

HeaderVocab BuildHeaderVocab(const core::TurlContext& ctx, int min_tables = 3);

/// One schema-augmentation query: a caption, zero or a few seed headers, and
/// the remaining headers as gold (restricted to the vocabulary).
struct SchemaAugInstance {
  size_t table_index = 0;
  std::vector<int> seed_headers;  ///< HeaderVocab ids.
  std::vector<int> gold_headers;  ///< HeaderVocab ids (non-empty).
};

std::vector<SchemaAugInstance> BuildSchemaAugInstances(
    const core::TurlContext& ctx, const HeaderVocab& vocab,
    const std::vector<size_t>& table_indices, int num_seeds,
    int max_instances = 0);

/// MAP of ranked header suggestions against the gold headers.
double EvaluateSchemaAugmentation(
    const std::vector<SchemaAugInstance>& instances,
    const std::vector<std::vector<int>>& rankings);

/// TURL fine-tuned for schema augmentation (§6.7): caption tokens, the seed
/// header tokens, and one [MASK] token are encoded; the [MASK]'s state
/// scores every header in H through a learned header embedding table,
/// trained with binary cross-entropy.
class TurlSchemaAugmenter {
 public:
  TurlSchemaAugmenter(core::TurlModel* model, const core::TurlContext* ctx,
                      const HeaderVocab* vocab, uint64_t seed);

  void Finetune(const std::vector<SchemaAugInstance>& train,
                const FinetuneOptions& options);

  /// TaskHead API (see tasks/task_head.h) -------------------------------

  /// Model input for one query: caption + seed header tokens + a trailing
  /// [MASK] pseudo-header. The mask is always the encoding's last token.
  core::EncodedTable Encode(const SchemaAugInstance& instance) const;

  /// Raw per-header scores (seeds not excluded), for analysis output.
  std::vector<float> Scores(const SchemaAugInstance& instance) const;
  std::vector<float> ScoresFrom(const nn::Tensor& hidden,
                                const core::EncodedTable& encoded,
                                const SchemaAugInstance& instance) const;

  /// Ranked header ids (best first), seeds excluded.
  std::vector<int> Predict(const SchemaAugInstance& instance) const;
  std::vector<int> PredictFrom(const nn::Tensor& hidden,
                               const core::EncodedTable& encoded,
                               const SchemaAugInstance& instance) const;

  /// MAP over queries; a session batches the forwards.
  double Evaluate(const std::vector<SchemaAugInstance>& instances,
                  const rt::InferenceSession* session = nullptr) const;

 private:
  core::EncodedTable EncodeQueryImpl(const SchemaAugInstance& instance,
                                     int* mask_token_row) const;
  nn::Tensor HeaderLogits(const nn::Tensor& hidden, int mask_token_row) const;

  core::TurlModel* model_;
  const core::TurlContext* ctx_;
  const HeaderVocab* vocab_;
  nn::ParamStore head_params_;
  std::unique_ptr<nn::Embedding> header_emb_;
  std::unique_ptr<nn::Linear> project_;
  /// Cached int8 pack of header_emb_ for TURL_QUANT_SCORING=1 serving;
  /// rebuilt lazily after Finetune/Resume invalidate it.
  mutable nn::kernels::QuantCache header_quant_;
};

}  // namespace tasks
}  // namespace turl

#endif  // TURL_TASKS_SCHEMA_AUGMENTATION_H_
