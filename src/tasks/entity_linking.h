#ifndef TURL_TASKS_ENTITY_LINKING_H_
#define TURL_TASKS_ENTITY_LINKING_H_

#include <memory>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/model.h"
#include "eval/metrics.h"
#include "kb/lookup.h"
#include "tasks/common.h"

namespace turl {
namespace tasks {

/// One entity-linking example: a cell with its gold entity and the lookup
/// service's candidate set (Definition 6.1; candidate generation is shared
/// by every method, as in the paper).
struct ElInstance {
  size_t table_index = 0;
  int column = 0;
  int row = 0;
  kb::EntityId gold = kb::kInvalidEntity;
  std::vector<kb::EntityId> candidates;
};

/// Entity-linking dataset for one split of tables.
struct ElDataset {
  std::vector<ElInstance> instances;
  /// Mentions whose candidate set misses the gold entity (kept: they count
  /// against recall, exactly like Wikidata Lookup failures in the paper).
  int64_t gold_missing = 0;
};

/// Builds the dataset over the given tables. When `drop_unreachable` is set,
/// instances whose candidates miss the gold entity are removed — the paper
/// does this for the fine-tuning set only.
ElDataset BuildElDataset(const core::TurlContext& ctx,
                         const kb::LookupService& lookup,
                         const std::vector<size_t>& table_indices,
                         int candidate_k = 50, bool drop_unreachable = false,
                         int max_instances = 0);

/// Knobs for the candidate-entity representation e^kb of Eqn. 8.
struct ElRepresentation {
  bool use_description = true;
  bool use_type = true;
};

/// TURL fine-tuned for entity disambiguation (§6.2): each cell is encoded
/// with its text only (no pre-trained entity embedding), and its
/// contextualized state h^e is matched against candidate representations
/// e^kb = [mean name embedding; mean description embedding; mean type
/// embedding] (Eqn. 8) via a learned bilinear map, trained with
/// cross-entropy over the candidate set.
class TurlEntityLinker {
 public:
  TurlEntityLinker(core::TurlModel* model, const core::TurlContext* ctx,
                   ElRepresentation representation, uint64_t seed);

  void Finetune(const ElDataset& train, const FinetuneOptions& options);

  /// TaskHead API (see tasks/task_head.h) -------------------------------

  /// Model input for one instance: its table with entity ids stripped
  /// (§6.2 links against the target KB, not pre-training entities).
  core::EncodedTable Encode(const ElInstance& instance) const;

  /// Bilinear match scores against the instance's candidate set, parallel
  /// to instance.candidates (empty when it is empty).
  std::vector<float> Scores(const ElInstance& instance) const;
  std::vector<float> ScoresFrom(const nn::Tensor& hidden,
                                const core::EncodedTable& encoded,
                                const ElInstance& instance) const;

  /// Predicted entity for one instance (kInvalidEntity when the candidate
  /// set is empty).
  kb::EntityId Predict(const ElInstance& instance) const;
  kb::EntityId PredictFrom(const nn::Tensor& hidden,
                           const core::EncodedTable& encoded,
                           const ElInstance& instance) const;

  /// P/R/F1 over a dataset: a prediction is a false positive when wrong,
  /// and missing predictions (empty candidates) only hurt recall. With a
  /// session, forwards run as micro-batches across its workers (identical
  /// result for any worker count).
  eval::Prf Evaluate(const ElDataset& dataset,
                     const rt::InferenceSession* session = nullptr) const;

 private:
  core::EncodedTable EncodeTableIndex(size_t table_index) const;
  /// e^kb rows for the candidates -> [n, 3*d_model].
  nn::Tensor CandidateReps(const std::vector<kb::EntityId>& candidates) const;
  nn::Tensor InstanceLogits(const nn::Tensor& hidden,
                            const core::EncodedTable& encoded,
                            const ElInstance& instance) const;
  /// Entity index within the encoded table for (column, row).
  static int EntityIndexOf(const core::EncodedTable& encoded, int column,
                           int row);

  core::TurlModel* model_;
  const core::TurlContext* ctx_;
  ElRepresentation representation_;
  nn::ParamStore head_params_;
  std::unique_ptr<nn::Linear> match_;      ///< h^e -> 3*d space.
  std::unique_ptr<nn::Embedding> type_emb_;  ///< Learned KB type embeddings.
};

/// Computes P/R/F1 for a baseline prediction function over a dataset.
eval::Prf EvaluateElPredictions(
    const ElDataset& dataset,
    const std::vector<kb::EntityId>& predictions);

/// Oracle row of Table 4: an instance counts correct iff the gold entity is
/// anywhere in its candidate set.
eval::Prf EvaluateElOracle(const ElDataset& dataset);

}  // namespace tasks
}  // namespace turl

#endif  // TURL_TASKS_ENTITY_LINKING_H_
