#include "tasks/entity_linking.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "nn/optim.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "tasks/task_head.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace turl {
namespace tasks {

ElDataset BuildElDataset(const core::TurlContext& ctx,
                         const kb::LookupService& lookup,
                         const std::vector<size_t>& table_indices,
                         int candidate_k, bool drop_unreachable,
                         int max_instances) {
  ElDataset dataset;
  for (size_t idx : table_indices) {
    const data::Table& t = ctx.corpus.tables[idx];
    for (int c = 0; c < t.num_columns(); ++c) {
      const data::Column& col = t.columns[size_t(c)];
      if (!col.is_entity_column) continue;
      for (int r = 0; r < t.num_rows(); ++r) {
        const data::EntityCell& cell = col.cells[size_t(r)];
        if (!cell.linked()) continue;  // No gold label to score against.
        ElInstance inst;
        inst.table_index = idx;
        inst.column = c;
        inst.row = r;
        inst.gold = cell.entity;
        for (const kb::LookupCandidate& cand :
             lookup.Lookup(cell.mention, candidate_k)) {
          inst.candidates.push_back(cand.entity);
        }
        const bool reachable =
            std::find(inst.candidates.begin(), inst.candidates.end(),
                      inst.gold) != inst.candidates.end();
        if (!reachable) {
          ++dataset.gold_missing;
          if (drop_unreachable) continue;
        }
        dataset.instances.push_back(std::move(inst));
        if (max_instances > 0 &&
            static_cast<int>(dataset.instances.size()) >= max_instances) {
          return dataset;
        }
      }
    }
  }
  return dataset;
}

TurlEntityLinker::TurlEntityLinker(core::TurlModel* model,
                                   const core::TurlContext* ctx,
                                   ElRepresentation representation,
                                   uint64_t seed)
    : model_(model), ctx_(ctx), representation_(representation) {
  TURL_CHECK(model != nullptr);
  Rng rng(seed);
  const int64_t d = model->config().d_model;
  match_ = std::make_unique<nn::Linear>(&head_params_, "el_match", d, 3 * d,
                                        &rng);
  type_emb_ = std::make_unique<nn::Embedding>(
      &head_params_, "el_type_emb", ctx->world.kb.num_types(), d, &rng);
}

core::EncodedTable TurlEntityLinker::EncodeTableIndex(
    size_t table_index) const {
  const text::WordPieceTokenizer tokenizer = ctx_->MakeTokenizer();
  core::EncodedTable encoded = core::EncodeTable(
      ctx_->corpus.tables[table_index], tokenizer, ctx_->entity_vocab);
  // The goal is linking against a target KB, not recovering pre-training
  // entities, so the pre-trained entity embeddings are not used (§6.2).
  StripEntityIds(&encoded);
  return encoded;
}

int TurlEntityLinker::EntityIndexOf(const core::EncodedTable& encoded,
                                    int column, int row) {
  for (int i = 0; i < encoded.num_entities(); ++i) {
    if (encoded.entity_column[size_t(i)] == column &&
        encoded.entity_row[size_t(i)] == row) {
      return i;
    }
  }
  return -1;
}

nn::Tensor TurlEntityLinker::CandidateReps(
    const std::vector<kb::EntityId>& candidates) const {
  const text::WordPieceTokenizer tokenizer = ctx_->MakeTokenizer();
  std::vector<std::vector<int>> name_bags, desc_bags, type_bags;
  for (kb::EntityId e : candidates) {
    const kb::Entity& ent = ctx_->world.kb.entity(e);
    name_bags.push_back(tokenizer.Encode(ent.name));
    desc_bags.push_back(representation_.use_description
                            ? tokenizer.Encode(ent.description)
                            : std::vector<int>{});
    std::vector<int> types;
    if (representation_.use_type) {
      for (kb::TypeId t : ctx_->world.kb.ExpandedTypes(e)) {
        types.push_back(static_cast<int>(t));
      }
    }
    type_bags.push_back(std::move(types));
  }
  nn::Tensor name_rep = nn::BagMean(model_->word_embedding().weight(),
                                    name_bags);
  nn::Tensor desc_rep = nn::BagMean(model_->word_embedding().weight(),
                                    desc_bags);
  nn::Tensor type_rep = nn::BagMean(type_emb_->weight(), type_bags);
  return nn::ConcatCols(nn::ConcatCols(name_rep, desc_rep), type_rep);
}

nn::Tensor TurlEntityLinker::InstanceLogits(
    const nn::Tensor& hidden, const core::EncodedTable& encoded,
    const ElInstance& instance) const {
  const int entity_index =
      EntityIndexOf(encoded, instance.column, instance.row);
  TURL_CHECK_GE(entity_index, 0) << "cell not present in encoding";
  nn::Tensor projected = match_->Forward(nn::SelectRows(
      hidden, {core::TurlModel::EntityHiddenRow(encoded, entity_index)}));
  return nn::MatMulNT(projected, CandidateReps(instance.candidates));
}

void TurlEntityLinker::Finetune(const ElDataset& train,
                                const FinetuneOptions& options) {
  std::map<size_t, std::vector<const ElInstance*>> by_table;
  for (const ElInstance& inst : train.instances) {
    if (inst.candidates.empty()) continue;
    by_table[inst.table_index].push_back(&inst);
  }
  std::vector<size_t> tables;
  for (const auto& [idx, insts] : by_table) tables.push_back(idx);

  Rng rng(options.seed);
  nn::Adam model_adam(model_->params(), nn::AdamConfig{.lr = options.lr});
  nn::Adam head_adam(&head_params_, nn::AdamConfig{.lr = options.lr});
  obs::FinetuneTelemetry telemetry("finetune.entity_linking", options.sink);
  FinetuneCheckpointer ckptr(
      options, "entity_linking",
      {{"model", model_->params()}, {"head", &head_params_}},
      {{"model_adam", &model_adam}, {"head_adam", &head_adam}}, &rng,
      &tables);
  const int start_epoch = ckptr.Resume();
  // Resume may have swapped in checkpointed weights, and the loop below
  // trains the model store: any model-level int8 pack is stale.
  model_->InvalidateQuantizedScoring();

  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&tables);
    size_t limit = tables.size();
    if (options.max_tables > 0) {
      limit = std::min(limit, static_cast<size_t>(options.max_tables));
    }
    for (size_t ti = 0; ti < limit; ++ti) {
      core::EncodedTable encoded = EncodeTableIndex(tables[ti]);
      if (encoded.total() == 0) continue;
      nn::Tensor hidden = model_->Encode(encoded, /*training=*/true, &rng);
      nn::Tensor loss;
      for (const ElInstance* inst : by_table[tables[ti]]) {
        auto it = std::find(inst->candidates.begin(), inst->candidates.end(),
                            inst->gold);
        if (it == inst->candidates.end()) continue;  // Unreachable gold.
        const int target = static_cast<int>(it - inst->candidates.begin());
        nn::Tensor ce = nn::SoftmaxCrossEntropy(
            InstanceLogits(hidden, encoded, *inst), {target});
        loss = loss.defined() ? nn::Add(loss, ce) : ce;
      }
      if (!loss.defined()) continue;
      // Model and head params are clipped separately, but health-wise the
      // step has one global norm: the Euclidean combination of the two.
      const double grad_norm = FinetuneStep(
          loss, options.grad_clip,
          {{model_->params(), &model_adam}, {&head_params_, &head_adam}});
      telemetry.Step(loss.item(), grad_norm);
    }
    telemetry.EndEpoch(epoch);
    ckptr.OnEpochEnd(epoch);
  }
  model_->InvalidateQuantizedScoring();
}

core::EncodedTable TurlEntityLinker::Encode(const ElInstance& instance) const {
  return EncodeTableIndex(instance.table_index);
}

std::vector<float> TurlEntityLinker::ScoresFrom(
    const nn::Tensor& hidden, const core::EncodedTable& encoded,
    const ElInstance& instance) const {
  if (instance.candidates.empty()) return {};
  obs::TraceSpan trace("task.score");
  if (trace.traced()) trace.Annotate("head", "entity_linking");
  if (nn::kernels::QuantScoringEnabled()) {
    // The candidate reps are per-instance (built from KB descriptions), so
    // this is a one-shot pack rather than a cached one — still a win: the
    // quantize pass is O(n*3d) against the O(n*3d) dot products it speeds
    // up, and candidate sets are small.
    const int entity_index =
        EntityIndexOf(encoded, instance.column, instance.row);
    TURL_CHECK_GE(entity_index, 0) << "cell not present in encoding";
    nn::Tensor projected = match_->Forward(nn::SelectRows(
        hidden, {core::TurlModel::EntityHiddenRow(encoded, entity_index)}));
    nn::Tensor reps = CandidateReps(instance.candidates);
    const nn::kernels::QuantizedMatrix q = nn::kernels::QuantizeRows(
        reps.data(), reps.dim(0), reps.dim(1), reps.dim(1), 1);
    std::vector<float> out(static_cast<size_t>(reps.dim(0)));
    nn::kernels::QuantizedScore(q, projected.data(), out.data());
    return out;
  }
  return InstanceLogits(hidden, encoded, instance).ToVector();
}

std::vector<float> TurlEntityLinker::Scores(const ElInstance& instance) const {
  if (instance.candidates.empty()) return {};
  core::EncodedTable encoded = Encode(instance);
  nn::Tensor hidden = model_->Encode(encoded, /*training=*/false);
  return ScoresFrom(hidden, encoded, instance);
}

kb::EntityId TurlEntityLinker::PredictFrom(const nn::Tensor& hidden,
                                           const core::EncodedTable& encoded,
                                           const ElInstance& instance) const {
  if (instance.candidates.empty()) return kb::kInvalidEntity;
  return instance.candidates[ArgMax(ScoresFrom(hidden, encoded, instance))];
}

kb::EntityId TurlEntityLinker::Predict(const ElInstance& instance) const {
  if (instance.candidates.empty()) return kb::kInvalidEntity;
  core::EncodedTable encoded = Encode(instance);
  nn::Tensor hidden = model_->Encode(encoded, /*training=*/false);
  return PredictFrom(hidden, encoded, instance);
}

eval::Prf TurlEntityLinker::Evaluate(
    const ElDataset& dataset, const rt::InferenceSession* session) const {
  std::vector<kb::EntityId> predictions;
  if (session != nullptr) {
    predictions =
        BulkPredict<kb::EntityId>(*this, dataset.instances, *session);
  } else {
    predictions.reserve(dataset.instances.size());
    for (const ElInstance& inst : dataset.instances) {
      predictions.push_back(Predict(inst));
    }
  }
  return EvaluateElPredictions(dataset, predictions);
}

eval::Prf EvaluateElPredictions(const ElDataset& dataset,
                                const std::vector<kb::EntityId>& predictions) {
  TURL_CHECK_EQ(predictions.size(), dataset.instances.size());
  int64_t tp = 0, fp = 0, no_pred = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == kb::kInvalidEntity) {
      ++no_pred;
    } else if (predictions[i] == dataset.instances[i].gold) {
      ++tp;
    } else {
      ++fp;
    }
  }
  // Recall denominator: every gold mention; fn = mentions not correctly
  // linked (wrong or no prediction).
  const int64_t fn = static_cast<int64_t>(predictions.size()) - tp;
  eval::Prf prf = eval::ComputePrf(tp, fp, /*fn=*/fn);
  return prf;
}

eval::Prf EvaluateElOracle(const ElDataset& dataset) {
  std::vector<kb::EntityId> predictions;
  for (const ElInstance& inst : dataset.instances) {
    const bool reachable =
        std::find(inst.candidates.begin(), inst.candidates.end(), inst.gold) !=
        inst.candidates.end();
    predictions.push_back(reachable
                              ? inst.gold
                              : (inst.candidates.empty()
                                     ? kb::kInvalidEntity
                                     : inst.candidates.front()));
  }
  return EvaluateElPredictions(dataset, predictions);
}

}  // namespace tasks
}  // namespace turl
