#ifndef TURL_TASKS_RELATION_EXTRACTION_H_
#define TURL_TASKS_RELATION_EXTRACTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/model.h"
#include "eval/metrics.h"
#include "tasks/common.h"

namespace turl {
namespace tasks {

/// One relation-extraction example: the subject column paired with one
/// object column, annotated with the KB relation holding between them
/// (Definition 6.3; our generator guarantees a single gold relation).
struct RelationInstance {
  size_t table_index = 0;
  int object_column = 0;
  int label = 0;  ///< Into RelationDataset::label_names.
};

/// The relation-extraction dataset (§6.4): (subject, object) column pairs
/// from each split; relations with fewer than `min_label_count` training
/// instances are dropped.
struct RelationDataset {
  std::vector<std::string> label_names;
  std::vector<RelationInstance> train;
  std::vector<RelationInstance> valid;
  std::vector<RelationInstance> test;

  int num_labels() const { return static_cast<int>(label_names.size()); }
};

RelationDataset BuildRelationDataset(const core::TurlContext& ctx,
                                     int min_label_count = 10);

/// TURL (or the BERT-style no-pre-training baseline, depending on the model
/// handed in) fine-tuned for relation extraction: P(r) =
/// sigmoid([h_c; h_c'] W_r + b_r) per Eqn. 12, trained with BCE.
class TurlRelationExtractor {
 public:
  TurlRelationExtractor(core::TurlModel* model, const core::TurlContext* ctx,
                        const RelationDataset* dataset, InputVariant variant,
                        uint64_t seed);

  /// Fine-tunes; when `step_callback` is set it is invoked every
  /// `eval_every` steps with (step, validation MAP) — the Figure 6 series.
  void Finetune(const FinetuneOptions& options, int64_t eval_every = 0,
                const std::function<void(int64_t, double)>& step_callback = {});

  /// TaskHead API (see tasks/task_head.h) -------------------------------

  /// Model input for one instance: its table under this extractor's variant.
  core::EncodedTable Encode(const RelationInstance& instance) const;

  /// Per-relation sigmoid probabilities (for MAP).
  std::vector<float> Scores(const RelationInstance& instance) const;
  std::vector<float> ScoresFrom(const nn::Tensor& hidden,
                                const core::EncodedTable& encoded,
                                const RelationInstance& instance) const;

  /// Labels with sigmoid probability > 0.5.
  std::vector<int> Predict(const RelationInstance& instance) const;
  std::vector<int> PredictFrom(const nn::Tensor& hidden,
                               const core::EncodedTable& encoded,
                               const RelationInstance& instance) const;

  /// Micro PRF over a split; a session batches the forwards.
  eval::Prf Evaluate(const std::vector<RelationInstance>& split,
                     const rt::InferenceSession* session = nullptr) const;

  /// Mean average precision over a split (gold = single relation).
  double EvaluateMap(const std::vector<RelationInstance>& split,
                     int max_instances = 0,
                     const rt::InferenceSession* session = nullptr) const;

 private:
  core::EncodedTable EncodeTableIndex(size_t table_index) const;
  nn::Tensor PairLogits(const nn::Tensor& hidden,
                        const core::EncodedTable& encoded,
                        int object_column) const;

  core::TurlModel* model_;
  const core::TurlContext* ctx_;
  const RelationDataset* dataset_;
  InputVariant variant_;
  nn::ParamStore head_params_;
  std::unique_ptr<nn::Linear> head_;
  /// Cached int8 pack of head_ for TURL_QUANT_SCORING=1 serving; rebuilt
  /// lazily after Finetune/Resume invalidate it.
  mutable nn::kernels::QuantCache head_quant_;
};

}  // namespace tasks
}  // namespace turl

#endif  // TURL_TASKS_RELATION_EXTRACTION_H_
