#ifndef TURL_TASKS_COMMON_H_
#define TURL_TASKS_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/model.h"
#include "core/table_encoding.h"
#include "nn/optim.h"
#include "obs/telemetry.h"
#include "util/rng.h"

namespace turl {
namespace rt {
/// Batched inference runtime (src/rt/); heads only name it in session-aware
/// Evaluate overloads, so a forward declaration keeps task headers light.
class InferenceSession;
}  // namespace rt

namespace tasks {

/// Input-ablation switches shared by the fine-tuning variants in Tables 4-7:
/// which parts of the encoded table the model may see.
struct InputVariant {
  bool use_metadata = true;    ///< Caption + header tokens.
  bool use_entity_ids = true;  ///< Pre-trained entity embeddings e^e.
  bool use_mentions = true;    ///< Entity mention text e^m.
  bool use_entities = true;    ///< Entity elements at all.

  /// Table 5 rows.
  static InputVariant Full() { return {}; }
  static InputVariant OnlyEntityMention() {
    return {.use_metadata = false, .use_entity_ids = false};
  }
  static InputVariant WithoutMetadata() { return {.use_metadata = false}; }
  static InputVariant WithoutLearnedEmbedding() {
    return {.use_entity_ids = false};
  }
  static InputVariant OnlyMetadata() { return {.use_entities = false}; }
  static InputVariant OnlyLearnedEmbedding() {
    return {.use_metadata = false, .use_mentions = false};
  }
};

/// Shared fine-tuning knobs. The paper fine-tunes for 10 epochs (50 for
/// schema augmentation); repro defaults are smaller and benches print what
/// they used.
struct FinetuneOptions {
  int epochs = 3;
  float lr = 5e-4f;
  /// Cap on distinct training tables used per epoch (0 = all).
  int max_tables = 0;
  uint64_t seed = 17;
  float grad_clip = 1.0f;
  /// Extra telemetry sink for this run's per-epoch TrainRecords; the global
  /// obs::TelemetryHub always receives them.
  obs::MetricsSink* sink = nullptr;

  /// Crash-safe epoch-boundary checkpointing (turl::ckpt). Non-empty
  /// enables it; a killed run resumed from this directory continues with
  /// bit-identical weights (the fingerprint excludes `epochs`, so extending
  /// a finished run — epochs=1 then resume with epochs=2 — equals the
  /// uninterrupted epochs=2 run).
  std::string ckpt_dir;
  /// Save after every this many completed epochs (0 = never).
  int save_every = 1;
  /// Checkpoints retained in ckpt_dir.
  int keep_last = 2;
  /// Resume from the newest valid checkpoint in ckpt_dir when one exists.
  bool resume = true;
};

/// Epoch-granular checkpointing shared by the task fine-tune loops. Binds
/// the loop's live stores/optimizers/RNG plus its shuffled visit order, and
/// wraps ckpt::CheckpointManager's save/retention/fallback behind two calls:
/// Resume() before the epoch loop and OnEpochEnd() after each epoch.
/// Inactive (every method a no-op returning "start fresh") when
/// options.ckpt_dir is empty.
class FinetuneCheckpointer {
 public:
  /// `stores`/`optims`/`rng`/`order` bind live loop objects that must
  /// outlive the checkpointer; `order` is the loop's shuffle vector (may be
  /// null for loops without one). `phase` names the task (e.g.
  /// "column_type") and scopes the config fingerprint.
  FinetuneCheckpointer(
      const FinetuneOptions& options, const std::string& phase,
      std::vector<std::pair<std::string, nn::ParamStore*>> stores,
      std::vector<std::pair<std::string, nn::Adam*>> optims, Rng* rng,
      std::vector<size_t>* order);
  ~FinetuneCheckpointer();

  /// Restores the newest valid checkpoint (params, moments, RNG, order) and
  /// returns the epoch to start from; 0 with nothing restored. Writes the
  /// restored global step through `global_step` when non-null.
  int Resume(int64_t* global_step = nullptr);

  /// Saves after `completed_epoch` (0-based) finished, respecting
  /// save_every/keep_last. `global_step` is persisted for loops that keep a
  /// step counter across epochs.
  void OnEpochEnd(int completed_epoch, int64_t global_step = 0);

  bool active() const { return manager_ != nullptr; }

 private:
  ckpt::TrainState Bind() const;

  std::unique_ptr<ckpt::CheckpointManager> manager_;
  std::vector<std::pair<std::string, nn::ParamStore*>> stores_;
  std::vector<std::pair<std::string, nn::Adam*>> optims_;
  Rng* rng_ = nullptr;
  std::vector<size_t>* order_ = nullptr;
  std::string fingerprint_;
  int save_every_ = 0;
  bool resume_ = false;
};

/// One fine-tune optimizer step shared by the task heads: zeroes every
/// store's gradients, backpropagates `loss` (on the TURL_TRAIN_THREADS
/// task-graph tape executor when that is > 1 — bit-identical to the
/// sequential tape at any thread count, see DESIGN.md §13), clips each
/// store's gradient norm to `grad_clip` separately (the historical per-store
/// behavior), then steps each optimizer, all in the given order. Returns the
/// Euclidean combination of the per-store pre-clip norms — the single
/// global-health number the telemetry records.
double FinetuneStep(
    nn::Tensor loss, float grad_clip,
    std::initializer_list<std::pair<nn::ParamStore*, nn::Adam*>> items);

/// Replaces every entity id with [UNK_ENT] (drops the learned embeddings).
void StripEntityIds(core::EncodedTable* table);

/// Drops every entity mention (e^m becomes the zero vector).
void StripMentions(core::EncodedTable* table);

/// Applies a variant to an already-encoded table. `use_metadata=false` and
/// `use_entities=false` must instead be applied at EncodeTable time via
/// EncodeOptions; this helper handles the id/mention stripping and checks
/// the other two flags were already honored.
void ApplyVariant(const InputVariant& variant, core::EncodedTable* table);

/// EncodeOptions matching a variant's structural flags.
core::EncodeOptions EncodeOptionsFor(const InputVariant& variant);

/// The column aggregate h_c of Eqn. 9 for `column`: the concatenation of
/// the mean header-token state and the mean entity-cell state of that
/// column -> [1, 2*d_model]. Either half falls back to zeros when the
/// variant removed its elements (e.g. the "only metadata" row).
nn::Tensor ColumnHidden(const nn::Tensor& hidden,
                        const core::EncodedTable& encoded, int column,
                        int64_t d_model);

/// Int8 scoring of one feature row against a Linear head (DESIGN.md §8,
/// TURL_QUANT_SCORING=1). The head weight W [in, out] is packed per OUTPUT
/// unit through `cache` (pack row i = W[:, i]); the bias adds in fp32.
/// `features` must be [1, in]. Returns all `out` logits. Callers own cache
/// invalidation: call cache->Invalidate() whenever the head retrains.
std::vector<float> QuantizedHeadLogits(nn::kernels::QuantCache* cache,
                                       const nn::Linear& head,
                                       const nn::Tensor& features);

/// Int8 scoring of one projected row `x` ([1, d]) against every row of an
/// embedding-style table ([n, d]) -> n logits (no bias). The pack caches in
/// `cache`; same invalidation contract as QuantizedHeadLogits.
std::vector<float> QuantizedEmbeddingScores(nn::kernels::QuantCache* cache,
                                            const nn::Tensor& table,
                                            const nn::Tensor& x);

}  // namespace tasks
}  // namespace turl

#endif  // TURL_TASKS_COMMON_H_
