#ifndef TURL_TASKS_COMMON_H_
#define TURL_TASKS_COMMON_H_

#include <vector>

#include "core/model.h"
#include "core/table_encoding.h"
#include "obs/telemetry.h"

namespace turl {
namespace rt {
/// Batched inference runtime (src/rt/); heads only name it in session-aware
/// Evaluate overloads, so a forward declaration keeps task headers light.
class InferenceSession;
}  // namespace rt

namespace tasks {

/// Input-ablation switches shared by the fine-tuning variants in Tables 4-7:
/// which parts of the encoded table the model may see.
struct InputVariant {
  bool use_metadata = true;    ///< Caption + header tokens.
  bool use_entity_ids = true;  ///< Pre-trained entity embeddings e^e.
  bool use_mentions = true;    ///< Entity mention text e^m.
  bool use_entities = true;    ///< Entity elements at all.

  /// Table 5 rows.
  static InputVariant Full() { return {}; }
  static InputVariant OnlyEntityMention() {
    return {.use_metadata = false, .use_entity_ids = false};
  }
  static InputVariant WithoutMetadata() { return {.use_metadata = false}; }
  static InputVariant WithoutLearnedEmbedding() {
    return {.use_entity_ids = false};
  }
  static InputVariant OnlyMetadata() { return {.use_entities = false}; }
  static InputVariant OnlyLearnedEmbedding() {
    return {.use_metadata = false, .use_mentions = false};
  }
};

/// Shared fine-tuning knobs. The paper fine-tunes for 10 epochs (50 for
/// schema augmentation); repro defaults are smaller and benches print what
/// they used.
struct FinetuneOptions {
  int epochs = 3;
  float lr = 5e-4f;
  /// Cap on distinct training tables used per epoch (0 = all).
  int max_tables = 0;
  uint64_t seed = 17;
  float grad_clip = 1.0f;
  /// Extra telemetry sink for this run's per-epoch TrainRecords; the global
  /// obs::TelemetryHub always receives them.
  obs::MetricsSink* sink = nullptr;
};

/// Replaces every entity id with [UNK_ENT] (drops the learned embeddings).
void StripEntityIds(core::EncodedTable* table);

/// Drops every entity mention (e^m becomes the zero vector).
void StripMentions(core::EncodedTable* table);

/// Applies a variant to an already-encoded table. `use_metadata=false` and
/// `use_entities=false` must instead be applied at EncodeTable time via
/// EncodeOptions; this helper handles the id/mention stripping and checks
/// the other two flags were already honored.
void ApplyVariant(const InputVariant& variant, core::EncodedTable* table);

/// EncodeOptions matching a variant's structural flags.
core::EncodeOptions EncodeOptionsFor(const InputVariant& variant);

/// The column aggregate h_c of Eqn. 9 for `column`: the concatenation of
/// the mean header-token state and the mean entity-cell state of that
/// column -> [1, 2*d_model]. Either half falls back to zeros when the
/// variant removed its elements (e.g. the "only metadata" row).
nn::Tensor ColumnHidden(const nn::Tensor& hidden,
                        const core::EncodedTable& encoded, int column,
                        int64_t d_model);

}  // namespace tasks
}  // namespace turl

#endif  // TURL_TASKS_COMMON_H_
