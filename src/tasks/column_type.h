#ifndef TURL_TASKS_COLUMN_TYPE_H_
#define TURL_TASKS_COLUMN_TYPE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/model.h"
#include "eval/metrics.h"
#include "tasks/common.h"

namespace turl {
namespace tasks {

/// One column-type-annotation example: a column of a corpus table with its
/// gold KB type labels (multi-label, hierarchy-expanded; Definition 6.2).
struct ColumnTypeInstance {
  size_t table_index = 0;
  int column = 0;
  std::vector<int> labels;  ///< Label ids into ColumnTypeDataset::label_names.
};

/// The column-type-annotation dataset (§6.3): entity columns with at least
/// `min_linked_entities` linked cells, annotated with the intersection of
/// their entities' expanded KB types; labels occurring fewer than
/// `min_label_count` times in training are dropped (and instances left with
/// no labels removed).
struct ColumnTypeDataset {
  std::vector<std::string> label_names;
  std::vector<kb::TypeId> label_types;  ///< Parallel KB type ids.
  std::vector<ColumnTypeInstance> train;
  std::vector<ColumnTypeInstance> valid;
  std::vector<ColumnTypeInstance> test;

  int num_labels() const { return static_cast<int>(label_names.size()); }
  int LabelOf(const std::string& name) const;
};

ColumnTypeDataset BuildColumnTypeDataset(const core::TurlContext& ctx,
                                         int min_linked_entities = 3,
                                         int min_label_count = 10);

/// TURL fine-tuned for column typing: h_c (Eqn. 9) -> per-type sigmoid
/// (Eqn. 10) with binary cross-entropy (Eqn. 11). The input variant selects
/// the ablation row of Tables 5/6.
class TurlColumnTyper {
 public:
  /// Wraps a (pre-trained) model; adds the classification head. The model
  /// and context must outlive the typer.
  TurlColumnTyper(core::TurlModel* model, const core::TurlContext* ctx,
                  const ColumnTypeDataset* dataset, InputVariant variant,
                  uint64_t seed);

  /// Fine-tunes all parameters (encoder + head).
  void Finetune(const FinetuneOptions& options);

  /// TaskHead API (see tasks/task_head.h) -------------------------------

  /// Model input for one instance: its table under this typer's variant.
  core::EncodedTable Encode(const ColumnTypeInstance& instance) const;

  /// Per-label sigmoid probabilities (size num_labels()).
  std::vector<float> Scores(const ColumnTypeInstance& instance) const;
  std::vector<float> ScoresFrom(const nn::Tensor& hidden,
                                const core::EncodedTable& encoded,
                                const ColumnTypeInstance& instance) const;

  /// Predicted label ids (sigmoid > 0.5) for one instance.
  std::vector<int> Predict(const ColumnTypeInstance& instance) const;
  std::vector<int> PredictFrom(const nn::Tensor& hidden,
                               const core::EncodedTable& encoded,
                               const ColumnTypeInstance& instance) const;

  /// Micro-averaged PRF over a split; a session batches the forwards.
  eval::Prf Evaluate(const std::vector<ColumnTypeInstance>& split,
                     const rt::InferenceSession* session = nullptr) const;

  /// Per-label PRF over a split (Table 6).
  std::vector<eval::Prf> EvaluatePerLabel(
      const std::vector<ColumnTypeInstance>& split,
      const rt::InferenceSession* session = nullptr) const;

 private:
  core::EncodedTable EncodeTableIndex(size_t table_index) const;
  nn::Tensor InstanceLogits(const nn::Tensor& hidden,
                            const core::EncodedTable& encoded,
                            int column) const;

  core::TurlModel* model_;
  const core::TurlContext* ctx_;
  const ColumnTypeDataset* dataset_;
  InputVariant variant_;
  nn::ParamStore head_params_;
  std::unique_ptr<nn::Linear> head_;
  /// Cached int8 pack of head_ for TURL_QUANT_SCORING=1 serving; rebuilt
  /// lazily after Finetune/Resume invalidate it.
  mutable nn::kernels::QuantCache head_quant_;
};

}  // namespace tasks
}  // namespace turl

#endif  // TURL_TASKS_COLUMN_TYPE_H_
