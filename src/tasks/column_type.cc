#include "tasks/column_type.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "nn/optim.h"
#include "obs/trace.h"
#include "tasks/task_head.h"
#include "util/logging.h"

namespace turl {
namespace tasks {

namespace {

/// "Common types of its entities" (§6.3): the expanded KB types held by a
/// majority (> 1/2) of the column's linked entities. A strict intersection
/// would erase fine-grained labels whenever a single entity's KB entry is
/// incomplete — majority voting is robust to the deliberate type dropout in
/// our synthetic KB, exactly as Freebase incompleteness demands.
std::vector<kb::TypeId> CommonTypes(const kb::KnowledgeBase& kb,
                                    const data::Column& column,
                                    int min_linked) {
  std::map<kb::TypeId, int> votes;
  int linked = 0;
  for (const data::EntityCell& cell : column.cells) {
    if (!cell.linked()) continue;
    ++linked;
    for (kb::TypeId t : kb.ExpandedTypes(cell.entity)) ++votes[t];
  }
  std::vector<kb::TypeId> common;
  if (linked < min_linked) return common;
  for (const auto& [t, v] : votes) {
    if (2 * v > linked) common.push_back(t);
  }
  return common;
}

}  // namespace

int ColumnTypeDataset::LabelOf(const std::string& name) const {
  for (size_t i = 0; i < label_names.size(); ++i) {
    if (label_names[i] == name) return static_cast<int>(i);
  }
  return -1;
}

ColumnTypeDataset BuildColumnTypeDataset(const core::TurlContext& ctx,
                                         int min_linked_entities,
                                         int min_label_count) {
  const kb::KnowledgeBase& kb = ctx.world.kb;

  // First pass over training tables: count type occurrences.
  std::unordered_map<kb::TypeId, int> counts;
  auto gather = [&](const std::vector<size_t>& indices,
                    std::vector<std::pair<ColumnTypeInstance,
                                          std::vector<kb::TypeId>>>* out) {
    for (size_t idx : indices) {
      const data::Table& t = ctx.corpus.tables[idx];
      for (int c = 0; c < t.num_columns(); ++c) {
        if (!t.columns[size_t(c)].is_entity_column) continue;
        std::vector<kb::TypeId> types =
            CommonTypes(kb, t.columns[size_t(c)], min_linked_entities);
        if (types.empty()) continue;
        out->push_back({ColumnTypeInstance{idx, c, {}}, std::move(types)});
      }
    }
  };

  std::vector<std::pair<ColumnTypeInstance, std::vector<kb::TypeId>>>
      raw_train, raw_valid, raw_test;
  gather(ctx.corpus.train, &raw_train);
  gather(ctx.corpus.valid, &raw_valid);
  gather(ctx.corpus.test, &raw_test);
  for (const auto& [inst, types] : raw_train) {
    for (kb::TypeId t : types) ++counts[t];
  }

  ColumnTypeDataset dataset;
  std::map<kb::TypeId, int> label_of;  // Ordered for determinism.
  for (const auto& [t, c] : std::map<kb::TypeId, int>(counts.begin(),
                                                      counts.end())) {
    if (c >= min_label_count) {
      label_of[t] = static_cast<int>(dataset.label_names.size());
      dataset.label_names.push_back(kb.type(t).name);
      dataset.label_types.push_back(t);
    }
  }

  auto materialize = [&](const auto& raw,
                         std::vector<ColumnTypeInstance>* out) {
    for (const auto& [inst, types] : raw) {
      ColumnTypeInstance copy = inst;
      for (kb::TypeId t : types) {
        auto it = label_of.find(t);
        if (it != label_of.end()) copy.labels.push_back(it->second);
      }
      if (!copy.labels.empty()) out->push_back(std::move(copy));
    }
  };
  materialize(raw_train, &dataset.train);
  materialize(raw_valid, &dataset.valid);
  materialize(raw_test, &dataset.test);
  return dataset;
}

TurlColumnTyper::TurlColumnTyper(core::TurlModel* model,
                                 const core::TurlContext* ctx,
                                 const ColumnTypeDataset* dataset,
                                 InputVariant variant, uint64_t seed)
    : model_(model), ctx_(ctx), dataset_(dataset), variant_(variant) {
  TURL_CHECK(model != nullptr);
  TURL_CHECK(ctx != nullptr);
  TURL_CHECK(dataset != nullptr);
  Rng rng(seed);
  head_ = std::make_unique<nn::Linear>(&head_params_, "column_type_head",
                                       2 * model->config().d_model,
                                       dataset->num_labels(), &rng);
}

core::EncodedTable TurlColumnTyper::EncodeTableIndex(
    size_t table_index) const {
  const text::WordPieceTokenizer tokenizer = ctx_->MakeTokenizer();
  core::EncodedTable encoded =
      core::EncodeTable(ctx_->corpus.tables[table_index], tokenizer,
                        ctx_->entity_vocab, EncodeOptionsFor(variant_));
  ApplyVariant(variant_, &encoded);
  return encoded;
}

nn::Tensor TurlColumnTyper::InstanceLogits(const nn::Tensor& hidden,
                                           const core::EncodedTable& encoded,
                                           int column) const {
  return head_->Forward(
      ColumnHidden(hidden, encoded, column, model_->config().d_model));
}

void TurlColumnTyper::Finetune(const FinetuneOptions& options) {
  // Group instances by table so each table is encoded once per visit.
  std::map<size_t, std::vector<const ColumnTypeInstance*>> by_table;
  for (const ColumnTypeInstance& inst : dataset_->train) {
    by_table[inst.table_index].push_back(&inst);
  }
  std::vector<size_t> tables;
  tables.reserve(by_table.size());
  for (const auto& [idx, insts] : by_table) tables.push_back(idx);

  Rng rng(options.seed);
  nn::Adam model_adam(model_->params(), nn::AdamConfig{.lr = options.lr});
  nn::Adam head_adam(&head_params_, nn::AdamConfig{.lr = options.lr});
  obs::FinetuneTelemetry telemetry("finetune.column_type", options.sink);
  FinetuneCheckpointer ckptr(
      options, "column_type",
      {{"model", model_->params()}, {"head", &head_params_}},
      {{"model_adam", &model_adam}, {"head_adam", &head_adam}}, &rng,
      &tables);
  const int start_epoch = ckptr.Resume();
  // Resume may have swapped in checkpointed weights, and the loop below
  // trains both stores: any int8 pack is stale on entry and on exit.
  head_quant_.Invalidate();
  model_->InvalidateQuantizedScoring();

  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&tables);
    size_t limit = tables.size();
    if (options.max_tables > 0) {
      limit = std::min(limit, static_cast<size_t>(options.max_tables));
    }
    for (size_t ti = 0; ti < limit; ++ti) {
      const auto& instances = by_table[tables[ti]];
      core::EncodedTable encoded = EncodeTableIndex(tables[ti]);
      if (encoded.total() == 0) continue;
      nn::Tensor hidden = model_->Encode(encoded, /*training=*/true, &rng);
      std::vector<nn::Tensor> logit_rows;
      std::vector<float> targets;
      for (const ColumnTypeInstance* inst : instances) {
        logit_rows.push_back(InstanceLogits(hidden, encoded, inst->column));
        std::vector<float> row(static_cast<size_t>(dataset_->num_labels()),
                               0.f);
        for (int l : inst->labels) row[size_t(l)] = 1.f;
        targets.insert(targets.end(), row.begin(), row.end());
      }
      nn::Tensor logits = logit_rows.size() == 1 ? logit_rows[0]
                                                 : nn::ConcatRows(logit_rows);
      nn::Tensor loss = nn::BceWithLogits(logits, targets);
      const double grad_norm = FinetuneStep(
          loss, options.grad_clip,
          {{model_->params(), &model_adam}, {&head_params_, &head_adam}});
      telemetry.Step(loss.item(), grad_norm);
    }
    telemetry.EndEpoch(epoch);
    ckptr.OnEpochEnd(epoch);
  }
  head_quant_.Invalidate();
  model_->InvalidateQuantizedScoring();
}

core::EncodedTable TurlColumnTyper::Encode(
    const ColumnTypeInstance& instance) const {
  return EncodeTableIndex(instance.table_index);
}

std::vector<float> TurlColumnTyper::ScoresFrom(
    const nn::Tensor& hidden, const core::EncodedTable& encoded,
    const ColumnTypeInstance& instance) const {
  obs::TraceSpan trace("task.score");
  if (trace.traced()) trace.Annotate("head", "column_type");
  if (nn::kernels::QuantScoringEnabled()) {
    std::vector<float> out = QuantizedHeadLogits(
        &head_quant_, *head_,
        ColumnHidden(hidden, encoded, instance.column,
                     model_->config().d_model));
    for (float& v : out) v = 1.f / (1.f + std::exp(-v));
    return out;
  }
  nn::Tensor probs =
      nn::SigmoidOp(InstanceLogits(hidden, encoded, instance.column));
  std::vector<float> out(static_cast<size_t>(dataset_->num_labels()));
  for (int l = 0; l < dataset_->num_labels(); ++l) out[size_t(l)] = probs.at(l);
  return out;
}

std::vector<float> TurlColumnTyper::Scores(
    const ColumnTypeInstance& instance) const {
  core::EncodedTable encoded = Encode(instance);
  nn::Tensor hidden = model_->Encode(encoded, /*training=*/false);
  return ScoresFrom(hidden, encoded, instance);
}

std::vector<int> TurlColumnTyper::PredictFrom(
    const nn::Tensor& hidden, const core::EncodedTable& encoded,
    const ColumnTypeInstance& instance) const {
  std::vector<float> probs = ScoresFrom(hidden, encoded, instance);
  std::vector<int> out;
  for (int l = 0; l < dataset_->num_labels(); ++l) {
    if (probs[size_t(l)] > 0.5f) out.push_back(l);
  }
  return out;
}

std::vector<int> TurlColumnTyper::Predict(
    const ColumnTypeInstance& instance) const {
  core::EncodedTable encoded = Encode(instance);
  nn::Tensor hidden = model_->Encode(encoded, /*training=*/false);
  return PredictFrom(hidden, encoded, instance);
}

eval::Prf TurlColumnTyper::Evaluate(
    const std::vector<ColumnTypeInstance>& split,
    const rt::InferenceSession* session) const {
  eval::MicroPrf micro;
  if (session != nullptr) {
    std::vector<std::vector<int>> preds =
        BulkPredict<std::vector<int>>(*this, split, *session);
    for (size_t i = 0; i < split.size(); ++i) {
      micro.Add(preds[i], split[i].labels);
    }
  } else {
    for (const ColumnTypeInstance& inst : split) {
      micro.Add(Predict(inst), inst.labels);
    }
  }
  return micro.Compute();
}

std::vector<eval::Prf> TurlColumnTyper::EvaluatePerLabel(
    const std::vector<ColumnTypeInstance>& split,
    const rt::InferenceSession* session) const {
  const int L = dataset_->num_labels();
  std::vector<std::vector<int>> preds;
  if (session != nullptr) {
    preds = BulkPredict<std::vector<int>>(*this, split, *session);
  } else {
    preds.reserve(split.size());
    for (const ColumnTypeInstance& inst : split) {
      preds.push_back(Predict(inst));
    }
  }
  std::vector<int64_t> tp(static_cast<size_t>(L), 0),
      fp(static_cast<size_t>(L), 0), fn(static_cast<size_t>(L), 0);
  for (size_t ii = 0; ii < split.size(); ++ii) {
    const ColumnTypeInstance& inst = split[ii];
    const std::vector<int>& pred = preds[ii];
    std::vector<bool> is_pred(static_cast<size_t>(L), false),
        is_gold(static_cast<size_t>(L), false);
    for (int l : pred) is_pred[size_t(l)] = true;
    for (int l : inst.labels) is_gold[size_t(l)] = true;
    for (int l = 0; l < L; ++l) {
      if (is_pred[size_t(l)] && is_gold[size_t(l)]) ++tp[size_t(l)];
      if (is_pred[size_t(l)] && !is_gold[size_t(l)]) ++fp[size_t(l)];
      if (!is_pred[size_t(l)] && is_gold[size_t(l)]) ++fn[size_t(l)];
    }
  }
  std::vector<eval::Prf> out;
  for (int l = 0; l < L; ++l) {
    out.push_back(eval::ComputePrf(tp[size_t(l)], fp[size_t(l)], fn[size_t(l)]));
  }
  return out;
}

}  // namespace tasks
}  // namespace turl
