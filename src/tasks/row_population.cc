#include "tasks/row_population.h"

#include <algorithm>
#include <unordered_set>

#include "eval/metrics.h"
#include "nn/optim.h"
#include "obs/trace.h"
#include "tasks/task_head.h"
#include "text/vocab.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace turl {
namespace tasks {

std::vector<RowPopInstance> BuildRowPopInstances(
    const core::TurlContext& ctx,
    const baselines::RowPopCandidateGenerator& generator,
    const std::vector<size_t>& table_indices, int num_seeds, int min_subjects,
    int max_instances) {
  std::vector<RowPopInstance> out;
  for (size_t idx : table_indices) {
    const data::Table& t = ctx.corpus.tables[idx];
    if (t.columns.empty() || !t.columns[0].is_entity_column) continue;
    std::vector<kb::EntityId> subjects;
    for (const data::EntityCell& cell : t.columns[0].cells) {
      if (cell.linked()) subjects.push_back(cell.entity);
    }
    if (static_cast<int>(subjects.size()) < min_subjects ||
        static_cast<int>(subjects.size()) <= num_seeds) {
      continue;
    }
    RowPopInstance inst;
    inst.table_index = idx;
    inst.seeds.assign(subjects.begin(), subjects.begin() + num_seeds);
    inst.gold.assign(subjects.begin() + num_seeds, subjects.end());
    inst.candidates =
        generator.Generate(t.caption, inst.seeds, ctx.world.kb);
    if (inst.candidates.empty()) continue;
    out.push_back(std::move(inst));
    if (max_instances > 0 &&
        static_cast<int>(out.size()) >= max_instances) {
      break;
    }
  }
  return out;
}

RowPopMetrics EvaluateRowPopScores(
    const std::vector<RowPopInstance>& instances,
    const std::vector<std::vector<double>>& scores) {
  TURL_CHECK_EQ(instances.size(), scores.size());
  std::vector<double> aps, recalls;
  for (size_t i = 0; i < instances.size(); ++i) {
    const RowPopInstance& inst = instances[i];
    TURL_CHECK_EQ(scores[i].size(), inst.candidates.size());
    std::unordered_set<kb::EntityId> gold(inst.gold.begin(), inst.gold.end());
    // Rank candidates by score (stable on ties by candidate order, which
    // preserves the generator's retrieval ranking).
    std::vector<size_t> order(inst.candidates.size());
    for (size_t j = 0; j < order.size(); ++j) order[j] = j;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return scores[i][a] > scores[i][b];
    });
    std::vector<bool> relevant(order.size());
    int64_t hits = 0;
    for (size_t rank = 0; rank < order.size(); ++rank) {
      relevant[rank] = gold.count(inst.candidates[order[rank]]) > 0;
      hits += relevant[rank];
    }
    aps.push_back(
        eval::AveragePrecision(relevant, static_cast<int64_t>(gold.size())));
    recalls.push_back(double(hits) / double(gold.size()));
  }
  return RowPopMetrics{eval::MeanOf(aps), eval::MeanOf(recalls)};
}

TurlRowPopulator::TurlRowPopulator(core::TurlModel* model,
                                   const core::TurlContext* ctx)
    : model_(model), ctx_(ctx) {
  TURL_CHECK(model != nullptr);
}

core::EncodedTable TurlRowPopulator::EncodeQueryImpl(
    const RowPopInstance& instance, int* mask_index) const {
  const data::Table& full = ctx_->corpus.tables[instance.table_index];
  // Partial table: caption + subject header + seed subject rows only.
  data::Table partial;
  partial.caption = full.caption;
  partial.topic_entity = full.topic_entity;
  partial.topic_mention = full.topic_mention;
  data::Column subject;
  subject.header = full.columns.empty() ? "entity" : full.columns[0].header;
  subject.is_entity_column = true;
  for (kb::EntityId seed : instance.seeds) {
    data::EntityCell cell;
    cell.entity = seed;
    cell.mention = ctx_->world.kb.entity(seed).name;
    subject.cells.push_back(std::move(cell));
  }
  partial.columns.push_back(std::move(subject));

  const text::WordPieceTokenizer tokenizer = ctx_->MakeTokenizer();
  core::EncodedTable encoded =
      core::EncodeTable(partial, tokenizer, ctx_->entity_vocab);
  *mask_index = encoded.AppendEntity(
      data::EntityVocab::kMaskEntity, core::kRoleSubject,
      static_cast<int>(instance.seeds.size()), 0, {text::kMaskId});
  return encoded;
}

nn::Tensor TurlRowPopulator::CandidateLogits(
    const nn::Tensor& hidden, const core::EncodedTable& encoded,
    int mask_index, const std::vector<int>& candidate_ids,
    core::Scoring scoring) const {
  return model_->MerLogits(
      hidden, {core::TurlModel::EntityHiddenRow(encoded, mask_index)},
      candidate_ids, scoring);
}

void TurlRowPopulator::Finetune(const std::vector<RowPopInstance>& train,
                                const FinetuneOptions& options) {
  Rng rng(options.seed);
  nn::Adam adam(model_->params(), nn::AdamConfig{.lr = options.lr});
  obs::FinetuneTelemetry telemetry("finetune.row_population", options.sink);
  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  // This head reuses the pre-trained entity embeddings directly, so there
  // is only the model store and its optimizer to checkpoint.
  FinetuneCheckpointer ckptr(options, "row_population",
                             {{"model", model_->params()}},
                             {{"model_adam", &adam}}, &rng, &order);
  const int start_epoch = ckptr.Resume();
  // Resume may have swapped in checkpointed weights, and the loop below
  // trains the model store: any model-level int8 pack is stale.
  model_->InvalidateQuantizedScoring();

  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    size_t limit = order.size();
    if (options.max_tables > 0) {
      limit = std::min(limit, static_cast<size_t>(options.max_tables));
    }
    for (size_t oi = 0; oi < limit; ++oi) {
      const RowPopInstance& inst = train[order[oi]];
      int mask_index = -1;
      core::EncodedTable encoded = EncodeQueryImpl(inst, &mask_index);
      std::vector<int> candidate_ids;
      std::vector<float> targets;
      std::unordered_set<kb::EntityId> gold(inst.gold.begin(),
                                            inst.gold.end());
      for (kb::EntityId e : inst.candidates) {
        candidate_ids.push_back(ctx_->entity_vocab.Id(e));
        targets.push_back(gold.count(e) ? 1.f : 0.f);
      }
      if (candidate_ids.empty()) continue;
      nn::Tensor hidden = model_->Encode(encoded, /*training=*/true, &rng);
      nn::Tensor logits = CandidateLogits(hidden, encoded, mask_index,
                                          candidate_ids, core::Scoring::kTrain);
      nn::Tensor loss = nn::BceWithLogits(logits, targets);  // Eqn. 13.
      const double grad_norm =
          FinetuneStep(loss, options.grad_clip, {{model_->params(), &adam}});
      telemetry.Step(loss.item(), grad_norm);
    }
    telemetry.EndEpoch(epoch);
    ckptr.OnEpochEnd(epoch);
  }
  model_->InvalidateQuantizedScoring();
}

core::EncodedTable TurlRowPopulator::Encode(
    const RowPopInstance& instance) const {
  int mask_index = -1;
  core::EncodedTable encoded = EncodeQueryImpl(instance, &mask_index);
  TURL_CHECK_EQ(mask_index, encoded.num_entities() - 1);
  return encoded;
}

std::vector<float> TurlRowPopulator::ScoresFrom(
    const nn::Tensor& hidden, const core::EncodedTable& encoded,
    const RowPopInstance& instance) const {
  obs::TraceSpan trace("task.score");
  if (trace.traced()) trace.Annotate("head", "row_population");
  // Encode() appends the [MASK] subject cell last.
  const int mask_index = encoded.num_entities() - 1;
  std::vector<int> candidate_ids;
  for (kb::EntityId e : instance.candidates) {
    candidate_ids.push_back(ctx_->entity_vocab.Id(e));
  }
  nn::Tensor logits = CandidateLogits(hidden, encoded, mask_index,
                                      candidate_ids, core::Scoring::kServe);
  std::vector<float> out;
  out.reserve(instance.candidates.size());
  for (int64_t i = 0; i < logits.numel(); ++i) {
    // Out-of-vocabulary candidates share the [UNK_ENT] embedding; push them
    // below every in-vocabulary candidate to keep the ranking sane.
    const bool oov = candidate_ids[size_t(i)] == data::EntityVocab::kUnkEntity;
    out.push_back(logits.at(i) - (oov ? 1e3f : 0.f));
  }
  return out;
}

std::vector<float> TurlRowPopulator::Scores(
    const RowPopInstance& instance) const {
  core::EncodedTable encoded = Encode(instance);
  nn::Tensor hidden = model_->Encode(encoded, /*training=*/false);
  return ScoresFrom(hidden, encoded, instance);
}

std::vector<size_t> TurlRowPopulator::PredictFrom(
    const nn::Tensor& hidden, const core::EncodedTable& encoded,
    const RowPopInstance& instance) const {
  std::vector<float> scores = ScoresFrom(hidden, encoded, instance);
  return TopK(scores, scores.size());
}

std::vector<size_t> TurlRowPopulator::Predict(
    const RowPopInstance& instance) const {
  core::EncodedTable encoded = Encode(instance);
  nn::Tensor hidden = model_->Encode(encoded, /*training=*/false);
  return PredictFrom(hidden, encoded, instance);
}

RowPopMetrics TurlRowPopulator::Evaluate(
    const std::vector<RowPopInstance>& instances,
    const rt::InferenceSession* session) const {
  std::vector<std::vector<float>> scores;
  if (session != nullptr) {
    scores = BulkScores(*this, instances, *session);
  } else {
    scores.reserve(instances.size());
    for (const RowPopInstance& inst : instances) {
      scores.push_back(Scores(inst));
    }
  }
  return EvaluateRowPopScores(instances, AsDouble(scores));
}

}  // namespace tasks
}  // namespace turl
