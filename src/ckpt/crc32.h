#ifndef TURL_CKPT_CRC32_H_
#define TURL_CKPT_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace turl {
namespace ckpt {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `n` bytes.
/// Pass the previous return value as `crc` to checksum data incrementally:
/// Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a, b)). The empty input has
/// CRC 0, and the standard check vector holds: Crc32("123456789", 9) ==
/// 0xCBF43926.
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

}  // namespace ckpt
}  // namespace turl

#endif  // TURL_CKPT_CRC32_H_
