#ifndef TURL_CKPT_CHECKPOINT_H_
#define TURL_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"
#include "nn/optim.h"
#include "util/rng.h"
#include "util/status.h"

namespace turl {
namespace ckpt {

/// Everything a training loop needs persisted to resume bit-identically:
/// the parameter stores, the optimizer moments, the RNG stream, and the
/// data cursor (where in which epoch the loop was, with the in-flight
/// shuffle order and any running accumulators the loop keeps).
///
/// The pointers *bind* live objects: SaveTrainState reads through them,
/// LoadTrainState validates the whole file against them and only then
/// commits — a corrupt, truncated, or mismatched checkpoint leaves every
/// bound object untouched.
struct TrainState {
  /// Named parameter stores (e.g. {"model", ...} and {"head", ...}).
  std::vector<std::pair<std::string, nn::ParamStore*>> stores;
  /// Named optimizers, each bound to one of the stores above.
  std::vector<std::pair<std::string, nn::Adam*>> optims;
  /// The training-loop RNG; null when the caller has none to persist.
  Rng* rng = nullptr;
  /// Configuration guard: LoadTrainState fails (without touching anything)
  /// when the file's fingerprint differs, so a checkpoint from a different
  /// config/seed cannot silently resume.
  std::string fingerprint;

  /// Data cursor: the loop resumes at (epoch, step_in_epoch).
  int64_t epoch = 0;
  int64_t step_in_epoch = 0;
  int64_t global_step = 0;
  /// The current epoch's shuffled visit order, so a mid-epoch resume walks
  /// the exact remaining tables.
  std::vector<uint64_t> order;
  /// Loop-defined integer accumulators (counts), restored verbatim.
  std::vector<int64_t> counters;
  /// Loop-defined floating accumulators (loss sums), restored bit-exactly.
  std::vector<double> accumulators;
  /// (step, metric) evaluation series collected so far.
  std::vector<std::pair<int64_t, double>> eval_curve;
};

/// Writes `state` as a v2 checkpoint (atomic tmp + fsync + rename). Timed
/// and sized through turl::obs (`ckpt.save_ms`, `ckpt.bytes`) and traced as
/// a `ckpt.save` span.
Status SaveTrainState(const TrainState& state, const std::string& path);

/// Loads `path` into the objects bound by `state`. Every section CRC and
/// the footer checksum must verify, the fingerprint must match, and every
/// parameter/moment/cursor field must be shape-consistent with the bound
/// objects *before* anything is committed; any failure leaves the stores,
/// optimizers, RNG and cursor exactly as they were. Traced as `ckpt.load`.
Status LoadTrainState(TrainState* state, const std::string& path);

/// Parameters-only checkpoint of one store (the model-distribution format
/// the cache and the inference runtime load). v2 file with a "meta" and one
/// "store:model" section.
Status SaveModel(const nn::ParamStore& store, const std::string& path,
                 const std::string& fingerprint = "");

/// Loads a model checkpoint into `store`, staging and validating everything
/// before the commit. Reads both v2 files and legacy v1 nn::SaveCheckpoint
/// files (read-only compatibility); `expected_fingerprint` is checked for
/// v2 files when non-empty (v1 files carry none).
Status LoadModel(nn::ParamStore* store, const std::string& path,
                 const std::string& expected_fingerprint = "");

/// Directory-level checkpoint lifecycle: numbered files, a LATEST pointer
/// updated only after the checkpoint itself is durable, keep-last-N
/// retention, and corruption fallback on load.
class CheckpointManager {
 public:
  struct Options {
    std::string dir;
    /// Newest checkpoints retained after each save; older ones are deleted.
    int keep_last = 3;
  };

  explicit CheckpointManager(Options options);

  const Options& options() const { return options_; }

  /// Saves `state` as `<dir>/ckpt-<global_step>.turl`, then atomically
  /// repoints `<dir>/LATEST` at it, then prunes to `keep_last` files. A
  /// failure at any stage leaves the previous checkpoint and pointer valid.
  Status Save(const TrainState& state);

  /// Loads the newest valid checkpoint into `state`: the LATEST target
  /// first, then retained files newest-first. Each corrupt candidate bumps
  /// the `ckpt.corrupt_fallbacks` counter and emits a warning TrainRecord
  /// before falling back to the next. NotFound when the directory holds no
  /// checkpoints; otherwise the last load error when none verify.
  Status LoadLatest(TrainState* state);

  /// Absolute path the LATEST pointer currently references ("" if none).
  std::string LatestPath() const;

  /// Retained checkpoint files, oldest first (absolute paths).
  std::vector<std::string> ListCheckpoints() const;

 private:
  Options options_;
};

}  // namespace ckpt
}  // namespace turl

#endif  // TURL_CKPT_CHECKPOINT_H_
