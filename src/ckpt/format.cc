#include "ckpt/format.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "ckpt/crc32.h"

namespace turl {
namespace ckpt {

namespace {

constexpr uint32_t kMagic = 0x5455524Cu;        // "TURL", shared with v1.
constexpr uint32_t kFormatVersion = 2;
constexpr uint32_t kFooterMagic = 0x544C5254u;  // "TLRT".
constexpr size_t kHeaderBytes = 4 + 4 + 8;
constexpr size_t kFooterBytes = 4 + 4;
// A section costs at least two u64 lengths and one u32 CRC on disk; used to
// reject absurd section counts before looping.
constexpr size_t kMinSectionBytes = 8 + 8 + 4;

std::atomic<int64_t> g_fail_write_after_bytes{-1};

void AppendRaw(std::string* buf, const void* data, size_t n) {
  buf->append(static_cast<const char*>(data), n);
}

void AppendU32(std::string* buf, uint32_t v) { AppendRaw(buf, &v, sizeof(v)); }
void AppendU64(std::string* buf, uint64_t v) { AppendRaw(buf, &v, sizeof(v)); }

/// Writes `data` to `fd`, honoring the injected crash point. Returns OK when
/// every byte reached the OS.
Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    size_t chunk = std::min<size_t>(size - written, size_t(1) << 20);
    const int64_t budget = g_fail_write_after_bytes.load();
    if (budget >= 0) {
      const size_t allowed =
          budget > int64_t(written) ? size_t(budget) - written : 0;
      if (allowed < chunk) chunk = allowed;
      if (chunk == 0) {
        g_fail_write_after_bytes.store(-1);
        return Status::IoError("injected write failure (crash simulation)");
      }
    }
    const ssize_t w = ::write(fd, data + written, chunk);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write failed: ") +
                             std::strerror(errno));
    }
    written += size_t(w);
  }
  return Status::OK();
}

/// fsyncs the directory containing `path` so a just-renamed entry survives a
/// crash. Best-effort: some filesystems reject directory fsync.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

/// Write-to-tmp + fsync + rename. On failure the destination is untouched.
Status WriteFileDurably(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open for write: " + tmp + ": " +
                           std::strerror(errno));
  }
  Status status = WriteAll(fd, contents.data(), contents.size());
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IoError(std::string("fsync failed: ") +
                             std::strerror(errno));
  }
  ::close(fd);
  if (!status.ok()) return status;  // Partial tmp stays, like a real crash.
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + " failed: " +
                           std::strerror(errno));
  }
  SyncParentDir(path);
  return Status::OK();
}

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Status WriteCheckpointFile(const std::string& path,
                           const std::vector<Section>& sections) {
  std::string buf;
  size_t total = kHeaderBytes + kFooterBytes;
  for (const Section& s : sections) {
    total += kMinSectionBytes + s.name.size() + s.payload.size();
  }
  buf.reserve(total);

  AppendU32(&buf, kMagic);
  AppendU32(&buf, kFormatVersion);
  AppendU64(&buf, sections.size());
  for (const Section& s : sections) {
    AppendU64(&buf, s.name.size());
    AppendRaw(&buf, s.name.data(), s.name.size());
    AppendU64(&buf, s.payload.size());
    AppendU32(&buf, Crc32(s.payload.data(), s.payload.size()));
    AppendRaw(&buf, s.payload.data(), s.payload.size());
  }
  const uint32_t file_crc = Crc32(buf.data(), buf.size());
  AppendU32(&buf, kFooterMagic);
  AppendU32(&buf, file_crc);
  return WriteFileDurably(path, buf);
}

Status ReadCheckpointFile(const std::string& path,
                          std::vector<Section>* sections) {
  sections->clear();
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
    return Status::IoError("cannot open checkpoint: " + path);
  }
  const size_t size = size_t(st.st_size);
  if (size < kHeaderBytes + kFooterBytes) {
    return Status::IoError("checkpoint truncated: " + path + " (" +
                           std::to_string(size) + " bytes)");
  }
  std::string buf(size, '\0');
  {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) return Status::IoError("cannot open checkpoint: " + path);
    in.read(buf.data(), std::streamsize(size));
    if (in.gcount() != std::streamsize(size)) {
      return Status::IoError("short read on checkpoint: " + path);
    }
  }
  const char* p = buf.data();

  // Footer first: a valid footer CRC certifies every byte of the file, so
  // nothing below can be acting on corrupt data.
  if (LoadU32(p + size - 8) != kFooterMagic) {
    return Status::IoError("bad checkpoint footer (truncated?): " + path);
  }
  const uint32_t want_crc = LoadU32(p + size - 4);
  if (Crc32(p, size - kFooterBytes) != want_crc) {
    return Status::IoError("checkpoint file checksum mismatch: " + path);
  }

  if (LoadU32(p) != kMagic) {
    return Status::IoError("bad checkpoint magic: " + path);
  }
  const uint32_t version = LoadU32(p + 4);
  if (version != kFormatVersion) {
    return Status::IoError("unsupported checkpoint version " +
                           std::to_string(version) + ": " + path);
  }
  const uint64_t count = LoadU64(p + 8);
  const size_t body_end = size - kFooterBytes;
  if (count > (body_end - kHeaderBytes) / kMinSectionBytes) {
    return Status::IoError("corrupt section count: " + path);
  }

  std::vector<Section> out;
  out.reserve(size_t(count));
  size_t pos = kHeaderBytes;
  for (uint64_t i = 0; i < count; ++i) {
    if (body_end - pos < 8) return Status::IoError("corrupt section table");
    const uint64_t name_len = LoadU64(p + pos);
    pos += 8;
    if (name_len > body_end - pos) {
      return Status::IoError("corrupt section name length");
    }
    Section s;
    s.name.assign(p + pos, name_len);
    pos += size_t(name_len);
    if (body_end - pos < 12) return Status::IoError("corrupt section header");
    const uint64_t payload_len = LoadU64(p + pos);
    const uint32_t payload_crc = LoadU32(p + pos + 8);
    pos += 12;
    if (payload_len > body_end - pos) {
      return Status::IoError("corrupt payload length in section '" + s.name +
                             "'");
    }
    if (Crc32(p + pos, size_t(payload_len)) != payload_crc) {
      return Status::IoError("checksum mismatch in section '" + s.name + "'");
    }
    s.payload.assign(p + pos, size_t(payload_len));
    pos += size_t(payload_len);
    out.push_back(std::move(s));
  }
  if (pos != body_end) {
    return Status::IoError("trailing bytes after last section: " + path);
  }
  *sections = std::move(out);
  return Status::OK();
}

uint32_t PeekCheckpointVersion(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return 0;
  char hdr[8];
  in.read(hdr, sizeof(hdr));
  if (in.gcount() != sizeof(hdr)) return 0;
  if (LoadU32(hdr) != kMagic) return 0;
  return LoadU32(hdr + 4);
}

Status WritePointerFile(const std::string& path, const std::string& contents) {
  return WriteFileDurably(path, contents);
}

Status ReadPointerFile(const std::string& path, std::string* contents) {
  contents->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("no pointer file: " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("cannot read pointer file: " + path);
  // Trim a trailing newline so hand-edited pointers still resolve.
  while (!data.empty() && (data.back() == '\n' || data.back() == '\r')) {
    data.pop_back();
  }
  *contents = std::move(data);
  return Status::OK();
}

void PayloadWriter::Append(const void* data, size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

void PayloadWriter::WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
void PayloadWriter::WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
void PayloadWriter::WriteI64(int64_t v) { Append(&v, sizeof(v)); }
void PayloadWriter::WriteFloat(float v) { Append(&v, sizeof(v)); }
void PayloadWriter::WriteDouble(double v) { Append(&v, sizeof(v)); }

void PayloadWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  Append(s.data(), s.size());
}

void PayloadWriter::WriteFloatSpan(const float* data, size_t n) {
  if (n > 0) Append(data, n * sizeof(float));
}

void PayloadWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteU64(v.size());
  WriteFloatSpan(v.data(), v.size());
}

void PayloadWriter::WriteU64Vector(const std::vector<uint64_t>& v) {
  WriteU64(v.size());
  if (!v.empty()) Append(v.data(), v.size() * sizeof(uint64_t));
}

void PayloadWriter::WriteI64Vector(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  if (!v.empty()) Append(v.data(), v.size() * sizeof(int64_t));
}

void PayloadWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteU64(v.size());
  if (!v.empty()) Append(v.data(), v.size() * sizeof(double));
}

bool PayloadReader::Take(void* out, size_t n) {
  if (!status_.ok()) return false;
  if (n > remaining()) {
    status_ = Status::IoError("payload truncated: need " + std::to_string(n) +
                              " bytes, have " + std::to_string(remaining()));
    std::memset(out, 0, n);
    return false;
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

uint32_t PayloadReader::ReadU32() {
  uint32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}
uint64_t PayloadReader::ReadU64() {
  uint64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}
int64_t PayloadReader::ReadI64() {
  int64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}
float PayloadReader::ReadFloat() {
  float v = 0;
  Take(&v, sizeof(v));
  return v;
}
double PayloadReader::ReadDouble() {
  double v = 0;
  Take(&v, sizeof(v));
  return v;
}

std::string PayloadReader::ReadString() {
  const uint64_t n = ReadU64();
  if (!status_.ok()) return "";
  if (n > remaining()) {
    status_ = Status::IoError("corrupt string length " + std::to_string(n));
    return "";
  }
  std::string s(data_.data() + pos_, size_t(n));
  pos_ += size_t(n);
  return s;
}

bool PayloadReader::ReadFloatSpan(float* out, size_t n) {
  return Take(out, n * sizeof(float));
}

namespace {
/// Length-prefixed vector read shared by the typed wrappers: the claimed
/// element count is clamped against the remaining payload bytes before the
/// vector is allocated.
template <typename T, typename Reader>
std::vector<T> ReadVector(Reader* r) {
  const uint64_t n = r->ReadU64();
  if (!r->status().ok()) return {};
  if (n > r->remaining() / sizeof(T)) {
    r->Fail("corrupt vector length " + std::to_string(n));
    return {};
  }
  std::vector<T> v(static_cast<size_t>(n));
  if (!v.empty() && !r->TakeRaw(v.data(), v.size() * sizeof(T))) return {};
  return v;
}
}  // namespace

void PayloadReader::Fail(const std::string& message) {
  if (status_.ok()) status_ = Status::IoError(message);
}

bool PayloadReader::TakeRaw(void* out, size_t n) { return Take(out, n); }

std::vector<float> PayloadReader::ReadFloatVector() {
  return ReadVector<float>(this);
}

std::vector<uint64_t> PayloadReader::ReadU64Vector() {
  return ReadVector<uint64_t>(this);
}

std::vector<int64_t> PayloadReader::ReadI64Vector() {
  return ReadVector<int64_t>(this);
}

std::vector<double> PayloadReader::ReadDoubleVector() {
  return ReadVector<double>(this);
}

namespace testing {
void SetWriteFailureAfterBytes(int64_t n) {
  g_fail_write_after_bytes.store(n);
}
}  // namespace testing

}  // namespace ckpt
}  // namespace turl
