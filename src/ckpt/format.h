#ifndef TURL_CKPT_FORMAT_H_
#define TURL_CKPT_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace turl {
namespace ckpt {

/// Checkpoint format v2 — the on-disk layer of `turl::ckpt`
/// =========================================================
/// A checkpoint file is a header, a list of named sections, and a footer,
/// all little-endian:
///
///   header:       u32 magic 'TURL'   u32 version = 2   u64 section_count
///   per section:  u64 name_len, name bytes,
///                 u64 payload_len, u32 payload_crc32, payload bytes
///   footer:       u32 footer_magic 'TLRT'
///                 u32 crc32 of every byte before the footer
///
/// The per-section CRC localizes corruption for diagnostics; the footer CRC
/// rejects any bit flip or truncation anywhere in the file (a truncated tail
/// also loses the footer magic). Writers produce the file atomically:
/// everything goes to `<path>.tmp`, is fsync'd, and only then renamed over
/// `path` — a crash at any point leaves either the complete previous file or
/// a stray `.tmp`, never a half-written checkpoint under the real name.
/// Readers validate the whole file (footer CRC, then every section bound and
/// CRC) before returning a single section, so callers can stage loads and
/// commit only on success.

/// One named section: an opaque payload the layer above interprets.
struct Section {
  std::string name;
  std::string payload;
};

/// Serializes the sections to `path` via write-to-tmp + fsync + atomic
/// rename (the containing directory is fsync'd as well so the rename itself
/// is durable). On failure the destination file is untouched; a partial
/// `<path>.tmp` may remain and is overwritten by the next attempt.
Status WriteCheckpointFile(const std::string& path,
                           const std::vector<Section>& sections);

/// Reads and fully validates a v2 checkpoint. Every claimed length is
/// bounded by the actual file size before any allocation, and both the
/// footer CRC and every section CRC must verify; on any failure `*sections`
/// is left empty and a non-OK status describes the first problem found.
Status ReadCheckpointFile(const std::string& path,
                          std::vector<Section>* sections);

/// Format version of the file at `path` (1 = legacy nn::SaveCheckpoint
/// stream, 2 = sectioned format above) or 0 when the file is missing,
/// unreadable, or does not start with the TURL magic.
uint32_t PeekCheckpointVersion(const std::string& path);

/// Writes a small pointer file (e.g. `LATEST`) with the same tmp + fsync +
/// rename protocol, so the pointer can never be observed half-written.
Status WritePointerFile(const std::string& path, const std::string& contents);

/// Reads a pointer file previously written by WritePointerFile.
Status ReadPointerFile(const std::string& path, std::string* contents);

/// In-memory payload builder for Section::payload. Same little-endian
/// encoding as util/serialize's BinaryWriter, but into a string, so the
/// section CRC can be computed before anything touches the disk.
class PayloadWriter {
 public:
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteFloat(float v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  /// Raw float block with no length prefix (caller wrote the count).
  void WriteFloatSpan(const float* data, size_t n);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteU64Vector(const std::vector<uint64_t>& v);
  void WriteI64Vector(const std::vector<int64_t>& v);
  void WriteDoubleVector(const std::vector<double>& v);

  size_t size() const { return buf_.size(); }
  std::string Take() { return std::move(buf_); }

 private:
  void Append(const void* data, size_t n);

  std::string buf_;
};

/// Bounded reader over a Section::payload. Mirrors PayloadWriter; any read
/// past the payload end (including a corrupt length prefix larger than the
/// remaining bytes) flips status() to an error *before* allocating and
/// returns a zero value. The payload must outlive the reader.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload) : data_(payload) {}

  PayloadReader(const PayloadReader&) = delete;
  PayloadReader& operator=(const PayloadReader&) = delete;

  uint32_t ReadU32();
  uint64_t ReadU64();
  int64_t ReadI64();
  float ReadFloat();
  double ReadDouble();
  std::string ReadString();
  /// Raw float block with no length prefix.
  bool ReadFloatSpan(float* out, size_t n);
  std::vector<float> ReadFloatVector();
  std::vector<uint64_t> ReadU64Vector();
  std::vector<int64_t> ReadI64Vector();
  std::vector<double> ReadDoubleVector();

  const Status& status() const { return status_; }
  size_t remaining() const { return data_.size() - pos_; }
  /// True when every byte was consumed without error — loaders require this
  /// so trailing garbage in a section is detected.
  bool Exhausted() const { return status_.ok() && pos_ == data_.size(); }

  /// Marks the reader failed with an IoError (first error wins).
  void Fail(const std::string& message);
  /// Raw bounded copy of `n` bytes; false (and failed status) when short.
  bool TakeRaw(void* out, size_t n);

 private:
  bool Take(void* out, size_t n);

  const std::string& data_;
  size_t pos_ = 0;
  Status status_;
};

namespace testing {
/// Fault injection: the next WriteCheckpointFile call fails (as if the
/// process was killed) once `n` bytes have reached the OS — the `.tmp` file
/// is left partial and no rename or fsync happens. One-shot: the hook
/// disarms after triggering. Pass -1 to disarm explicitly.
void SetWriteFailureAfterBytes(int64_t n);
}  // namespace testing

}  // namespace ckpt
}  // namespace turl

#endif  // TURL_CKPT_FORMAT_H_
