#include "ckpt/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <unordered_map>

#include "ckpt/format.h"
#include "nn/checkpoint.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/serialize.h"
#include "util/timer.h"

namespace turl {
namespace ckpt {

namespace {

// Layout version of the *state* encoding inside the sections (the file
// container has its own version in the header).
constexpr uint32_t kStateVersion = 1;

constexpr char kMetaSection[] = "meta";
constexpr char kRngSection[] = "rng";
constexpr char kCursorSection[] = "cursor";
constexpr char kStorePrefix[] = "store:";
constexpr char kOptimPrefix[] = "optim:";
constexpr char kLatestFile[] = "LATEST";
constexpr char kCheckpointPrefix[] = "ckpt-";
constexpr char kCheckpointSuffix[] = ".turl";

std::string StoreSectionName(const std::string& name) {
  return std::string(kStorePrefix) + name;
}
std::string OptimSectionName(const std::string& name) {
  return std::string(kOptimPrefix) + name;
}

Section MakeMetaSection(const TrainState& state) {
  PayloadWriter w;
  w.WriteU32(kStateVersion);
  w.WriteString(state.fingerprint);
  return Section{kMetaSection, w.Take()};
}

Section MakeStoreSection(const std::string& name, const nn::ParamStore& store) {
  PayloadWriter w;
  w.WriteU64(store.params().size());
  for (const auto& [pname, t] : store.params()) {
    w.WriteString(pname);
    w.WriteU64(t.shape().size());
    for (int64_t d : t.shape()) w.WriteI64(d);
    w.WriteU64(uint64_t(t.numel()));
    w.WriteFloatSpan(t.data(), size_t(t.numel()));
  }
  return Section{StoreSectionName(name), w.Take()};
}

Section MakeOptimSection(const std::string& name, const nn::Adam& adam) {
  PayloadWriter w;
  w.WriteI64(adam.step_count());
  w.WriteU64(adam.first_moments().size());
  for (size_t i = 0; i < adam.first_moments().size(); ++i) {
    const std::vector<float>& m = adam.first_moments()[i];
    const std::vector<float>& v = adam.second_moments()[i];
    w.WriteU64(m.size());
    w.WriteFloatSpan(m.data(), m.size());
    w.WriteFloatSpan(v.data(), v.size());
  }
  return Section{OptimSectionName(name), w.Take()};
}

Section MakeRngSection(const Rng& rng) {
  const Rng::State s = rng.GetState();
  PayloadWriter w;
  for (uint64_t word : s.s) w.WriteU64(word);
  w.WriteU32(s.has_spare_normal ? 1 : 0);
  w.WriteDouble(s.spare_normal);
  return Section{kRngSection, w.Take()};
}

Section MakeCursorSection(const TrainState& state) {
  PayloadWriter w;
  w.WriteI64(state.epoch);
  w.WriteI64(state.step_in_epoch);
  w.WriteI64(state.global_step);
  w.WriteU64Vector(state.order);
  w.WriteI64Vector(state.counters);
  w.WriteDoubleVector(state.accumulators);
  w.WriteU64(state.eval_curve.size());
  for (const auto& [step, value] : state.eval_curve) {
    w.WriteI64(step);
    w.WriteDouble(value);
  }
  return Section{kCursorSection, w.Take()};
}

std::vector<Section> BuildSections(const TrainState& state) {
  std::vector<Section> sections;
  sections.push_back(MakeMetaSection(state));
  for (const auto& [name, store] : state.stores) {
    sections.push_back(MakeStoreSection(name, *store));
  }
  for (const auto& [name, adam] : state.optims) {
    sections.push_back(MakeOptimSection(name, *adam));
  }
  if (state.rng != nullptr) sections.push_back(MakeRngSection(*state.rng));
  sections.push_back(MakeCursorSection(state));
  return sections;
}

/// Staged parameter data for one store: tensors to write and the bytes to
/// write into them, committed only after the whole file validates.
struct StagedStore {
  std::vector<nn::Tensor> targets;
  std::vector<std::vector<float>> data;
};

struct StagedOptim {
  nn::Adam* adam = nullptr;
  std::vector<std::vector<float>> m;
  std::vector<std::vector<float>> v;
  int64_t step = 0;
};

Status ParseStoreSection(const std::string& payload, nn::ParamStore* store,
                         const std::string& section, StagedStore* staged) {
  PayloadReader r(payload);
  const uint64_t count = r.ReadU64();
  if (!r.status().ok()) return r.status();
  if (count != store->params().size()) {
    return Status::FailedPrecondition(
        "section '" + section + "' has " + std::to_string(count) +
        " params, store has " + std::to_string(store->params().size()));
  }
  std::unordered_map<std::string, nn::Tensor> by_name;
  for (const auto& [name, t] : store->params()) by_name.emplace(name, t);
  for (uint64_t i = 0; i < count; ++i) {
    const std::string name = r.ReadString();
    const uint64_t rank = r.ReadU64();
    if (!r.status().ok()) return r.status();
    if (rank > r.remaining() / sizeof(int64_t)) {
      return Status::IoError("corrupt rank for param '" + name + "'");
    }
    nn::Shape shape(rank);
    for (uint64_t d = 0; d < rank; ++d) shape[d] = r.ReadI64();
    const uint64_t numel = r.ReadU64();
    if (!r.status().ok()) return r.status();
    if (numel > r.remaining() / sizeof(float)) {
      return Status::IoError("corrupt element count for param '" + name + "'");
    }
    std::vector<float> data(static_cast<size_t>(numel));
    if (!r.TakeRaw(data.data(), data.size() * sizeof(float))) {
      return r.status();
    }
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      return Status::FailedPrecondition("unknown parameter in checkpoint: " +
                                        name);
    }
    nn::Tensor t = it->second;
    if (t.shape() != shape || uint64_t(t.numel()) != numel) {
      return Status::FailedPrecondition(
          "shape mismatch for " + name + ": " + nn::ShapeToString(t.shape()) +
          " vs " + nn::ShapeToString(shape));
    }
    staged->targets.push_back(t);
    staged->data.push_back(std::move(data));
  }
  if (!r.Exhausted()) {
    return Status::IoError("trailing bytes in section '" + section + "'");
  }
  return Status::OK();
}

Status ParseOptimSection(const std::string& payload, nn::Adam* adam,
                         const std::string& section, StagedOptim* staged) {
  PayloadReader r(payload);
  staged->adam = adam;
  staged->step = r.ReadI64();
  const uint64_t count = r.ReadU64();
  if (!r.status().ok()) return r.status();
  if (count != adam->first_moments().size()) {
    return Status::FailedPrecondition(
        "section '" + section + "' has " + std::to_string(count) +
        " moment buffers, optimizer has " +
        std::to_string(adam->first_moments().size()));
  }
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t numel = r.ReadU64();
    if (!r.status().ok()) return r.status();
    if (numel != adam->first_moments()[size_t(i)].size()) {
      return Status::FailedPrecondition(
          "moment size mismatch in '" + section + "' at buffer " +
          std::to_string(i));
    }
    if (numel > r.remaining() / sizeof(float)) {
      return Status::IoError("corrupt moment length in '" + section + "'");
    }
    std::vector<float> m(static_cast<size_t>(numel));
    std::vector<float> v(static_cast<size_t>(numel));
    if (!r.TakeRaw(m.data(), m.size() * sizeof(float)) ||
        !r.TakeRaw(v.data(), v.size() * sizeof(float))) {
      return r.status();
    }
    staged->m.push_back(std::move(m));
    staged->v.push_back(std::move(v));
  }
  if (!r.Exhausted()) {
    return Status::IoError("trailing bytes in section '" + section + "'");
  }
  return Status::OK();
}

Status ParseRngSection(const std::string& payload, Rng::State* out) {
  PayloadReader r(payload);
  for (uint64_t& word : out->s) word = r.ReadU64();
  out->has_spare_normal = r.ReadU32() != 0;
  out->spare_normal = r.ReadDouble();
  if (!r.Exhausted()) {
    return r.status().ok() ? Status::IoError("trailing bytes in rng section")
                           : r.status();
  }
  return Status::OK();
}

Status ParseCursorSection(const std::string& payload, TrainState* staged) {
  PayloadReader r(payload);
  staged->epoch = r.ReadI64();
  staged->step_in_epoch = r.ReadI64();
  staged->global_step = r.ReadI64();
  staged->order = r.ReadU64Vector();
  staged->counters = r.ReadI64Vector();
  staged->accumulators = r.ReadDoubleVector();
  const uint64_t curve_n = r.ReadU64();
  if (!r.status().ok()) return r.status();
  if (curve_n > r.remaining() / (sizeof(int64_t) + sizeof(double))) {
    return Status::IoError("corrupt eval-curve length");
  }
  staged->eval_curve.reserve(size_t(curve_n));
  for (uint64_t i = 0; i < curve_n; ++i) {
    const int64_t step = r.ReadI64();
    const double value = r.ReadDouble();
    staged->eval_curve.emplace_back(step, value);
  }
  if (!r.Exhausted()) {
    return r.status().ok() ? Status::IoError("trailing bytes in cursor section")
                           : r.status();
  }
  return Status::OK();
}

/// Stage-validate-commit loader shared by LoadTrainState and LoadModel.
/// When `require_all_sections` is false, sections not bound by `state`
/// (optimizers, rng, cursor) are ignored — used to pull just the parameters
/// out of a full training checkpoint.
Status LoadInto(TrainState* state, const std::string& path,
                bool require_all_sections) {
  std::vector<Section> sections;
  TURL_RETURN_IF_ERROR(ReadCheckpointFile(path, &sections));
  std::map<std::string, const std::string*> by_name;
  for (const Section& s : sections) {
    if (!by_name.emplace(s.name, &s.payload).second) {
      return Status::IoError("duplicate section '" + s.name + "': " + path);
    }
  }
  auto find = [&](const std::string& name) -> const std::string* {
    auto it = by_name.find(name);
    if (it == by_name.end()) return nullptr;
    const std::string* payload = it->second;
    by_name.erase(it);  // Track consumption for the strict check below.
    return payload;
  };

  // Meta: state version + fingerprint guard.
  const std::string* meta = find(kMetaSection);
  if (meta == nullptr) {
    return Status::IoError("checkpoint missing meta section: " + path);
  }
  {
    PayloadReader r(*meta);
    const uint32_t version = r.ReadU32();
    const std::string fingerprint = r.ReadString();
    if (!r.status().ok()) return r.status();
    if (version != kStateVersion) {
      return Status::IoError("unsupported checkpoint state version " +
                             std::to_string(version));
    }
    if (!state->fingerprint.empty() && fingerprint != state->fingerprint) {
      return Status::FailedPrecondition(
          "checkpoint fingerprint mismatch: file has '" + fingerprint +
          "', expected '" + state->fingerprint + "'");
    }
  }

  // Stage every bound component; nothing live is touched yet.
  std::vector<StagedStore> staged_stores(state->stores.size());
  for (size_t i = 0; i < state->stores.size(); ++i) {
    const std::string section = StoreSectionName(state->stores[i].first);
    const std::string* payload = find(section);
    if (payload == nullptr) {
      return Status::FailedPrecondition("checkpoint missing section '" +
                                        section + "': " + path);
    }
    TURL_RETURN_IF_ERROR(ParseStoreSection(*payload, state->stores[i].second,
                                           section, &staged_stores[i]));
  }
  std::vector<StagedOptim> staged_optims(state->optims.size());
  for (size_t i = 0; i < state->optims.size(); ++i) {
    const std::string section = OptimSectionName(state->optims[i].first);
    const std::string* payload = find(section);
    if (payload == nullptr) {
      return Status::FailedPrecondition("checkpoint missing section '" +
                                        section + "': " + path);
    }
    TURL_RETURN_IF_ERROR(ParseOptimSection(*payload, state->optims[i].second,
                                           section, &staged_optims[i]));
  }
  Rng::State staged_rng;
  if (state->rng != nullptr) {
    const std::string* payload = find(kRngSection);
    if (payload == nullptr) {
      return Status::FailedPrecondition("checkpoint missing rng section: " +
                                        path);
    }
    TURL_RETURN_IF_ERROR(ParseRngSection(*payload, &staged_rng));
  }
  TrainState staged_cursor;
  bool have_cursor = false;
  if (require_all_sections) {
    const std::string* payload = find(kCursorSection);
    if (payload == nullptr) {
      return Status::FailedPrecondition("checkpoint missing cursor section: " +
                                        path);
    }
    TURL_RETURN_IF_ERROR(ParseCursorSection(*payload, &staged_cursor));
    have_cursor = true;
    if (!by_name.empty()) {
      return Status::FailedPrecondition("checkpoint has unexpected section '" +
                                        by_name.begin()->first + "': " + path);
    }
  }

  // Everything verified — commit. None of these can fail any more.
  for (StagedStore& ss : staged_stores) {
    for (size_t i = 0; i < ss.targets.size(); ++i) {
      std::memcpy(ss.targets[i].data(), ss.data[i].data(),
                  ss.data[i].size() * sizeof(float));
    }
  }
  for (StagedOptim& so : staged_optims) {
    TURL_CHECK_OK(
        so.adam->SetState(std::move(so.m), std::move(so.v), so.step));
  }
  if (state->rng != nullptr) state->rng->SetState(staged_rng);
  if (have_cursor) {
    state->epoch = staged_cursor.epoch;
    state->step_in_epoch = staged_cursor.step_in_epoch;
    state->global_step = staged_cursor.global_step;
    state->order = std::move(staged_cursor.order);
    state->counters = std::move(staged_cursor.counters);
    state->accumulators = std::move(staged_cursor.accumulators);
    state->eval_curve = std::move(staged_cursor.eval_curve);
  }
  return Status::OK();
}

int64_t FileSize(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? int64_t(st.st_size) : 0;
}

}  // namespace

Status SaveTrainState(const TrainState& state, const std::string& path) {
  obs::TraceSpan span("ckpt.save");
  WallTimer timer;
  const Status s = WriteCheckpointFile(path, BuildSections(state));
  if (s.ok()) {
    const int64_t bytes = FileSize(path);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
    reg.GetHistogram("ckpt.save_ms", obs::Histogram::DefaultLatencyBucketsMs())
        ->Observe(timer.ElapsedMillis());
    reg.GetCounter("ckpt.bytes")->Inc(bytes);
    reg.GetCounter("ckpt.saves")->Inc();
    if (span.traced()) {
      span.Annotate("step", state.global_step);
      span.Annotate("bytes", bytes);
    }
  }
  return s;
}

Status LoadTrainState(TrainState* state, const std::string& path) {
  obs::TraceSpan span("ckpt.load");
  WallTimer timer;
  const Status s = LoadInto(state, path, /*require_all_sections=*/true);
  if (s.ok()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Get();
    reg.GetHistogram("ckpt.load_ms", obs::Histogram::DefaultLatencyBucketsMs())
        ->Observe(timer.ElapsedMillis());
    reg.GetCounter("ckpt.loads")->Inc();
  }
  return s;
}

Status SaveModel(const nn::ParamStore& store, const std::string& path,
                 const std::string& fingerprint) {
  TrainState state;
  // SaveTrainState only reads through the pointer; the const_cast never
  // leads to a mutation.
  state.stores.emplace_back("model", const_cast<nn::ParamStore*>(&store));
  state.fingerprint = fingerprint;
  return SaveTrainState(state, path);
}

Status LoadModel(nn::ParamStore* store, const std::string& path,
                 const std::string& expected_fingerprint) {
  const uint32_t version = PeekCheckpointVersion(path);
  if (version == 1) {
    // Legacy stream from nn::SaveCheckpoint — still loadable, read-only.
    obs::TraceSpan span("ckpt.load");
    return nn::LoadCheckpoint(store, path);
  }
  TrainState state;
  state.stores.emplace_back("model", store);
  state.fingerprint = expected_fingerprint;
  obs::TraceSpan span("ckpt.load");
  return LoadInto(&state, path, /*require_all_sections=*/false);
}

CheckpointManager::CheckpointManager(Options options)
    : options_(std::move(options)) {
  TURL_CHECK(!options_.dir.empty()) << "CheckpointManager needs a directory";
  TURL_CHECK_GE(options_.keep_last, 1);
}

Status CheckpointManager::Save(const TrainState& state) {
  TURL_RETURN_IF_ERROR(MakeDirs(options_.dir));
  char name[64];
  std::snprintf(name, sizeof(name), "%s%012lld%s", kCheckpointPrefix,
                static_cast<long long>(state.global_step), kCheckpointSuffix);
  const std::string path = options_.dir + "/" + name;
  TURL_RETURN_IF_ERROR(SaveTrainState(state, path));
  // The checkpoint is durable; only now may LATEST advance to it.
  TURL_RETURN_IF_ERROR(
      WritePointerFile(options_.dir + "/" + kLatestFile, name));
  // Retention: keep the newest keep_last files (the one LATEST references is
  // by construction the newest, so it always survives).
  std::vector<std::string> retained = ListCheckpoints();
  const size_t keep = size_t(options_.keep_last);
  if (retained.size() > keep) {
    for (size_t i = 0; i + keep < retained.size(); ++i) {
      ::unlink(retained[i].c_str());
    }
  }
  return Status::OK();
}

Status CheckpointManager::LoadLatest(TrainState* state) {
  std::vector<std::string> candidates;
  const std::string latest = LatestPath();
  if (!latest.empty()) candidates.push_back(latest);
  std::vector<std::string> retained = ListCheckpoints();
  for (auto it = retained.rbegin(); it != retained.rend(); ++it) {
    if (*it != latest) candidates.push_back(*it);
  }
  if (candidates.empty()) {
    return Status::NotFound("no checkpoints in " + options_.dir);
  }
  Status last_error = Status::OK();
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Status s = LoadTrainState(state, candidates[i]);
    if (s.ok()) return s;
    last_error = s;
    obs::MetricsRegistry::Get().GetCounter("ckpt.corrupt_fallbacks")->Inc();
    TURL_LOG(Warning) << "checkpoint " << candidates[i]
                      << " failed to load (" << s.ToString()
                      << "); falling back to an older one";
    obs::TrainRecord record;
    record.phase = "ckpt";
    record.warning = "corrupt checkpoint " + candidates[i] + ": " +
                     s.ToString();
    obs::EmitRecord(record);
  }
  return last_error;
}

std::string CheckpointManager::LatestPath() const {
  std::string name;
  if (!ReadPointerFile(options_.dir + "/" + kLatestFile, &name).ok()) {
    return "";
  }
  // The pointer holds a bare filename; anything else is tampering and is
  // treated as absent (LoadLatest then scans the retained files).
  if (name.empty() || name.find('/') != std::string::npos) return "";
  return options_.dir + "/" + name;
}

std::vector<std::string> CheckpointManager::ListCheckpoints() const {
  std::vector<std::string> names;
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) return {};
  const std::string prefix = kCheckpointPrefix;
  const std::string suffix = kCheckpointSuffix;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    names.push_back(name);
  }
  ::closedir(dir);
  // Zero-padded step numbers make lexicographic order chronological.
  std::sort(names.begin(), names.end());
  std::vector<std::string> paths;
  paths.reserve(names.size());
  for (const std::string& name : names) {
    paths.push_back(options_.dir + "/" + name);
  }
  return paths;
}

}  // namespace ckpt
}  // namespace turl
