#ifndef TURL_DATA_CORPUS_GENERATOR_H_
#define TURL_DATA_CORPUS_GENERATOR_H_

#include "data/table.h"
#include "kb/kb_generator.h"
#include "util/rng.h"

namespace turl {
namespace data {

/// Controls synthetic corpus generation (the WikiTable-corpus substitute).
struct CorpusGeneratorConfig {
  /// Number of tables to emit.
  int num_tables = 3000;
  /// Row-count bounds; instances with fewer eligible subjects are skipped.
  int min_rows = 3;
  int max_rows = 18;
  /// Probability that an entity cell keeps its hyperlink (others become
  /// mention-only, like unlinked Wikipedia cells).
  double cell_link_probability = 0.8;
  /// Subject-column cells link more often (they anchor the table).
  double subject_link_probability = 0.92;
  /// Probability a mention uses an alias instead of the canonical name.
  double alias_probability = 0.22;
  /// Probability a mention carries a one-character corruption.
  double typo_probability = 0.06;
  /// Probability of appending a non-entity (numeric/text) column.
  double extra_text_column_probability = 0.7;
  /// Fraction of tables placed in the held-out pool (split ~1:1 into
  /// validation and test, mirroring §5.1).
  double held_out_fraction = 0.12;
};

/// Generates a corpus of relational tables from the synthetic KB using the
/// paper-motivated page patterns (team rosters, filmographies, award
/// recipient lists, discographies, nationality rosters, city lists). Each
/// table records ground-truth entity links and column relations for task
/// dataset construction. The returned corpus is partitioned per §5.1:
/// held-out tables must have >4 linked subject entities, >=3 entity columns
/// and >50% linked cells in entity columns.
Corpus GenerateCorpus(const kb::SyntheticKb& world,
                      const CorpusGeneratorConfig& config, Rng* rng);

/// Renders one mention for `entity`: canonical name, an alias, or a
/// one-character corruption, per the config probabilities. Exposed for tests
/// and for task datasets that need fresh mentions.
std::string RenderMention(const kb::KnowledgeBase& kb, kb::EntityId entity,
                          double alias_probability, double typo_probability,
                          Rng* rng);

}  // namespace data
}  // namespace turl

#endif  // TURL_DATA_CORPUS_GENERATOR_H_
