#ifndef TURL_DATA_EXPORT_H_
#define TURL_DATA_EXPORT_H_

#include <string>

#include "data/table.h"
#include "kb/kb.h"
#include "util/status.h"

namespace turl {
namespace data {

/// Renders one table as CSV: header row, then cell mentions. Fields are
/// quoted/escaped per RFC 4180 when they contain commas, quotes or
/// newlines.
std::string TableToCsv(const Table& table);

/// Renders one table as a single JSON object with the full structure
/// (caption, topic, per-column headers/relations, per-cell mention + KB id).
/// Relation/entity ids are resolved to names via `kb` when provided.
std::string TableToJson(const Table& table,
                        const kb::KnowledgeBase* kb = nullptr);

/// Writes every table of `corpus` to `path` as JSON Lines (one table per
/// line), with a leading metadata line recording the split indices.
Status ExportCorpusJsonl(const Corpus& corpus, const std::string& path,
                         const kb::KnowledgeBase* kb = nullptr);

/// JSON string escaping helper (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// CSV field escaping helper.
std::string CsvEscape(const std::string& s);

}  // namespace data
}  // namespace turl

#endif  // TURL_DATA_EXPORT_H_
