#include "data/export.h"

#include <cstdio>
#include <fstream>

namespace turl {
namespace data {

std::string CsvEscape(const std::string& s) {
  bool needs_quotes = false;
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string TableToCsv(const Table& table) {
  std::string out;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += ',';
    out += CsvEscape(table.columns[size_t(c)].header);
  }
  out += '\n';
  for (int r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ',';
      out += CsvEscape(table.columns[size_t(c)].cells[size_t(r)].mention);
    }
    out += '\n';
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

std::string TableToJson(const Table& table, const kb::KnowledgeBase* kb) {
  std::string out = "{";
  out += "\"caption\":\"" + JsonEscape(table.caption) + "\"";
  out += ",\"pattern\":\"" + JsonEscape(table.pattern) + "\"";
  out += ",\"topic_mention\":\"" + JsonEscape(table.topic_mention) + "\"";
  if (table.topic_entity != kb::kInvalidEntity) {
    out += ",\"topic_entity\":" + std::to_string(table.topic_entity);
    if (kb != nullptr) {
      out += ",\"topic_name\":\"" +
             JsonEscape(kb->entity(table.topic_entity).name) + "\"";
    }
  }
  out += ",\"columns\":[";
  for (int c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.columns[size_t(c)];
    if (c > 0) out += ',';
    out += "{\"header\":\"" + JsonEscape(col.header) + "\"";
    out += ",\"entity_column\":";
    out += col.is_entity_column ? "true" : "false";
    if (col.relation != kb::kInvalidRelation) {
      out += ",\"relation\":\"" +
             JsonEscape(kb != nullptr ? kb->relation(col.relation).name
                                      : std::to_string(col.relation)) +
             "\"";
    }
    out += ",\"cells\":[";
    for (size_t r = 0; r < col.cells.size(); ++r) {
      const EntityCell& cell = col.cells[r];
      if (r > 0) out += ',';
      out += "{\"mention\":\"" + JsonEscape(cell.mention) + "\"";
      if (cell.linked()) {
        out += ",\"entity\":" + std::to_string(cell.entity);
        if (kb != nullptr) {
          out += ",\"name\":\"" + JsonEscape(kb->entity(cell.entity).name) +
                 "\"";
        }
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

Status ExportCorpusJsonl(const Corpus& corpus, const std::string& path,
                         const kb::KnowledgeBase* kb) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for write: " + path);
  }
  // Metadata line.
  auto write_split = [](std::string* s, const std::vector<size_t>& split) {
    *s += "[";
    for (size_t i = 0; i < split.size(); ++i) {
      if (i > 0) *s += ',';
      *s += std::to_string(split[i]);
    }
    *s += "]";
  };
  std::string meta = "{\"num_tables\":" + std::to_string(corpus.tables.size());
  meta += ",\"train\":";
  write_split(&meta, corpus.train);
  meta += ",\"valid\":";
  write_split(&meta, corpus.valid);
  meta += ",\"test\":";
  write_split(&meta, corpus.test);
  meta += "}";
  out << meta << '\n';
  for (const Table& t : corpus.tables) {
    out << TableToJson(t, kb) << '\n';
  }
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace data
}  // namespace turl
