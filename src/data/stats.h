#ifndef TURL_DATA_STATS_H_
#define TURL_DATA_STATS_H_

#include <string>
#include <vector>

#include "data/table.h"

namespace turl {
namespace data {

/// min/mean/median/max summary of one per-table quantity, as reported in the
/// paper's Table 3.
struct QuantityStats {
  double min = 0, mean = 0, median = 0, max = 0;
};

/// Per-split statistics for the pre-training dataset (Table 3 rows).
struct SplitStats {
  size_t num_tables = 0;
  QuantityStats rows;
  QuantityStats entity_columns;
  QuantityStats entities;
};

/// Computes Table 3-style statistics over the given table indices.
SplitStats ComputeSplitStats(const Corpus& corpus,
                             const std::vector<size_t>& indices);

/// Renders one stats row as "min mean median max" with integral formatting.
std::string FormatQuantityStats(const QuantityStats& q);

}  // namespace data
}  // namespace turl

#endif  // TURL_DATA_STATS_H_
