#include "data/corpus_generator.h"

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "util/logging.h"

namespace turl {
namespace data {

namespace {

using kb::EntityId;
using kb::KnowledgeBase;
using kb::RelationId;
using kb::SyntheticKb;

/// Applies one character corruption (drop or adjacent swap); ~30% of typos
/// apply a second edit, putting the mention beyond easy fuzzy recovery —
/// these become the candidate-generation failures the paper reports.
std::string Corrupt(const std::string& s, Rng* rng) {
  std::string out = s;
  const int edits = rng->Bernoulli(0.3) ? 2 : 1;
  for (int e = 0; e < edits; ++e) {
    if (out.size() < 3) break;
    const size_t pos = 1 + rng->Uniform(out.size() - 2);
    if (rng->Bernoulli(0.5)) {
      out.erase(pos, 1);
    } else {
      std::swap(out[pos], out[pos - 1]);
    }
  }
  return out;
}

/// One pattern instance under construction.
struct PatternSpec {
  std::string name;
  EntityId topic;
  RelationId group_relation;            // subject --group_relation--> topic
  std::string subject_header;
  std::string caption;
  std::vector<RelationId> object_relations;  // candidate object columns
  std::vector<std::string> text_columns;     // candidate non-entity columns
  /// Generator for one text-column cell value.
  enum class TextKind { kYear, kSmallCount, kBigCount } text_kind =
      TextKind::kYear;
};

class Generator {
 public:
  Generator(const SyntheticKb& world, const CorpusGeneratorConfig& config,
            Rng* rng)
      : world_(world), kb_(world.kb), config_(config), rng_(rng) {}

  Corpus Generate() {
    Corpus corpus;
    corpus.tables.reserve(static_cast<size_t>(config_.num_tables));
    int attempts = 0;
    const int max_attempts = config_.num_tables * 20;
    while (static_cast<int>(corpus.tables.size()) < config_.num_tables &&
           attempts < max_attempts) {
      ++attempts;
      auto spec = SampleSpec();
      if (!spec.has_value()) continue;
      auto table = Build(*spec);
      if (table.has_value()) corpus.tables.push_back(std::move(*table));
    }
    TURL_CHECK_GT(corpus.tables.size(), 0u) << "corpus generation produced nothing";
    Partition(&corpus);
    return corpus;
  }

 private:
  EntityId PickOfType(kb::TypeId t) {
    const auto& pool = kb_.EntitiesOfType(t);
    TURL_CHECK(!pool.empty());
    return pool[rng_->Uniform(pool.size())];
  }

  std::optional<PatternSpec> SampleSpec() {
    PatternSpec spec;
    // Pattern mix roughly matching how often each page type occurs on
    // Wikipedia: rosters and filmographies dominate.
    const size_t which = rng_->Discrete({3.0, 3.0, 1.5, 1.0, 1.0, 1.5, 0.8});
    switch (which) {
      case 0: {  // Team roster.
        spec.name = "team_roster";
        spec.topic = PickOfType(world_.t_sports_team);
        spec.group_relation = world_.r_plays_for;
        spec.subject_header = rng_->Bernoulli(0.5) ? "player" : "name";
        const int season = int(rng_->UniformInt(1990, 2020));
        spec.caption = std::to_string(season) + " " +
                       kb_.entity(spec.topic).name + " season squad players";
        spec.object_relations = {world_.r_nationality, world_.r_birthplace};
        spec.text_columns = {"goals", "appearances", "number"};
        spec.text_kind = PatternSpec::TextKind::kSmallCount;
        break;
      }
      case 1: {  // Director filmography.
        spec.name = "filmography";
        spec.topic = PickOfType(world_.t_director);
        spec.group_relation = world_.r_directed_by;
        spec.subject_header = rng_->Bernoulli(0.5) ? "film" : "title";
        spec.caption = kb_.entity(spec.topic).name + " filmography films";
        spec.object_relations = {world_.r_starring, world_.r_film_language,
                                 world_.r_film_country};
        spec.text_columns = {"year", "length"};
        spec.text_kind = PatternSpec::TextKind::kYear;
        break;
      }
      case 2: {  // Actor's films.
        spec.name = "actor_films";
        spec.topic = PickOfType(world_.t_actor);
        spec.group_relation = world_.r_starring;
        spec.subject_header = "film";
        spec.caption =
            "list of films starring " + kb_.entity(spec.topic).name;
        spec.object_relations = {world_.r_directed_by, world_.r_film_language,
                                 world_.r_film_country};
        spec.text_columns = {"year"};
        spec.text_kind = PatternSpec::TextKind::kYear;
        break;
      }
      case 3: {  // Award recipients (the paper's Figure 1 shape).
        spec.name = "award_recipients";
        spec.topic = PickOfType(world_.t_award);
        spec.group_relation = world_.r_won_award;
        spec.subject_header = "film";
        spec.caption = kb_.entity(spec.topic).name + " recipients list";
        spec.object_relations = {world_.r_directed_by, world_.r_film_language};
        spec.text_columns = {"year"};
        spec.text_kind = PatternSpec::TextKind::kYear;
        break;
      }
      case 4: {  // Musician discography.
        spec.name = "discography";
        spec.topic = PickOfType(world_.t_musician);
        spec.group_relation = world_.r_artist;
        spec.subject_header = "album";
        spec.caption = kb_.entity(spec.topic).name + " discography albums";
        spec.object_relations = {world_.r_label};
        spec.text_columns = {"year"};
        spec.text_kind = PatternSpec::TextKind::kYear;
        break;
      }
      case 5: {  // Players by nationality.
        spec.name = "country_players";
        spec.topic = PickOfType(world_.t_country);
        spec.group_relation = world_.r_nationality;
        spec.subject_header = "player";
        spec.caption = "list of " + kb_.entity(spec.topic).name +
                       " footballers players";
        spec.object_relations = {world_.r_plays_for, world_.r_birthplace};
        spec.text_columns = {"goals", "caps"};
        spec.text_kind = PatternSpec::TextKind::kSmallCount;
        break;
      }
      default: {  // Cities of a country (pre-train only: 1 entity column).
        spec.name = "country_cities";
        spec.topic = PickOfType(world_.t_country);
        spec.group_relation = world_.r_located_in;
        spec.subject_header = "city";
        spec.caption =
            "list of cities in " + kb_.entity(spec.topic).name;
        spec.object_relations = {};
        spec.text_columns = {"population"};
        spec.text_kind = PatternSpec::TextKind::kBigCount;
        break;
      }
    }
    return spec;
  }

  std::string TextCellValue(PatternSpec::TextKind kind) {
    switch (kind) {
      case PatternSpec::TextKind::kYear:
        return std::to_string(rng_->UniformInt(1950, 2020));
      case PatternSpec::TextKind::kSmallCount:
        return std::to_string(rng_->UniformInt(0, 60));
      case PatternSpec::TextKind::kBigCount:
        return std::to_string(rng_->UniformInt(10000, 9000000));
    }
    return "0";
  }

  std::optional<Table> Build(const PatternSpec& spec) {
    std::vector<EntityId> subjects =
        kb_.Subjects(spec.group_relation, spec.topic);
    if (static_cast<int>(subjects.size()) < config_.min_rows) {
      return std::nullopt;
    }
    rng_->Shuffle(&subjects);
    const int rows = std::min<int>(static_cast<int>(subjects.size()),
                                   config_.max_rows);
    subjects.resize(static_cast<size_t>(rows));

    Table table;
    table.caption = spec.caption;
    table.topic_entity = spec.topic;
    table.topic_mention = kb_.entity(spec.topic).name;
    table.group_relation = spec.group_relation;
    table.pattern = spec.name;

    // Subject column.
    Column subject_col;
    subject_col.header = spec.subject_header;
    subject_col.is_entity_column = true;
    for (EntityId s : subjects) {
      EntityCell cell;
      cell.mention = RenderMention(kb_, s, config_.alias_probability,
                                   config_.typo_probability, rng_);
      if (rng_->Bernoulli(config_.subject_link_probability)) cell.entity = s;
      subject_col.cells.push_back(std::move(cell));
    }
    table.columns.push_back(std::move(subject_col));

    // Object columns: a random non-empty subset, order shuffled.
    std::vector<RelationId> rels = spec.object_relations;
    rng_->Shuffle(&rels);
    int keep = rels.empty() ? 0
                            : 1 + static_cast<int>(rng_->Uniform(rels.size()));
    rels.resize(static_cast<size_t>(keep));
    for (RelationId r : rels) {
      const auto& surfaces = kb_.relation(r).header_surfaces;
      Column col;
      // Real Web tables often carry uninformative headers; a fraction of
      // object columns get a generic one, which keeps header matching from
      // being an oracle (the paper's headers are similarly noisy).
      static const char* kGenericHeaders[] = {"name", "details", "info"};
      if (rng_->Bernoulli(0.25)) {
        col.header = kGenericHeaders[rng_->Uniform(3)];
      } else {
        col.header = surfaces[rng_->Uniform(surfaces.size())];
      }
      col.is_entity_column = true;
      col.relation = r;
      for (EntityId s : subjects) {
        EntityCell cell;
        const auto& objects = kb_.Objects(s, r);
        if (objects.empty()) {
          cell.mention = "-";  // Missing fact: unlinked placeholder.
        } else {
          // Multi-valued facts: tables usually show the primary value
          // (first-listed), sometimes an alternative.
          size_t pick = 0;
          if (objects.size() > 1 && !rng_->Bernoulli(0.65)) {
            pick = 1 + rng_->Uniform(objects.size() - 1);
          }
          EntityId o = objects[pick];
          cell.mention = RenderMention(kb_, o, config_.alias_probability,
                                       config_.typo_probability, rng_);
          if (rng_->Bernoulli(config_.cell_link_probability)) cell.entity = o;
        }
        col.cells.push_back(std::move(cell));
      }
      table.columns.push_back(std::move(col));
    }

    // Optional non-entity columns.
    std::vector<std::string> text_cols = spec.text_columns;
    rng_->Shuffle(&text_cols);
    for (const std::string& header : text_cols) {
      if (!rng_->Bernoulli(config_.extra_text_column_probability)) continue;
      Column col;
      col.header = header;
      col.is_entity_column = false;
      for (int i = 0; i < rows; ++i) {
        EntityCell cell;
        cell.mention = TextCellValue(spec.text_kind);
        col.cells.push_back(std::move(cell));
      }
      table.columns.push_back(std::move(col));
      if (table.columns.size() >= 6) break;
    }

    if (table.NumLinkedEntities() < 3) return std::nullopt;  // §5.1 filter.
    return table;
  }

  /// §5.1 held-out eligibility.
  static bool EligibleForHeldOut(const Table& t) {
    return t.NumLinkedSubjectEntities() > 4 && t.NumEntityColumns() >= 3 &&
           t.LinkedCellFraction() > 0.5;
  }

  void Partition(Corpus* corpus) {
    std::vector<size_t> eligible, rest;
    for (size_t i = 0; i < corpus->tables.size(); ++i) {
      (EligibleForHeldOut(corpus->tables[i]) ? eligible : rest).push_back(i);
    }
    rng_->Shuffle(&eligible);
    size_t target = static_cast<size_t>(config_.held_out_fraction *
                                        double(corpus->tables.size()));
    target = std::min(target, eligible.size());
    // Roughly 1:1 validation:test, as in the paper.
    const size_t n_valid = target / 2;
    for (size_t i = 0; i < target; ++i) {
      (i < n_valid ? corpus->valid : corpus->test).push_back(eligible[i]);
    }
    for (size_t i = target; i < eligible.size(); ++i) {
      rest.push_back(eligible[i]);
    }
    std::sort(rest.begin(), rest.end());
    corpus->train = std::move(rest);
    std::sort(corpus->valid.begin(), corpus->valid.end());
    std::sort(corpus->test.begin(), corpus->test.end());
  }

  const SyntheticKb& world_;
  const KnowledgeBase& kb_;
  CorpusGeneratorConfig config_;
  Rng* rng_;
};

}  // namespace

std::string RenderMention(const KnowledgeBase& kb, EntityId entity,
                          double alias_probability, double typo_probability,
                          Rng* rng) {
  const kb::Entity& e = kb.entity(entity);
  std::string mention = e.name;
  if (!e.aliases.empty() && rng->Bernoulli(alias_probability)) {
    mention = e.aliases[rng->Uniform(e.aliases.size())];
  }
  if (rng->Bernoulli(typo_probability)) mention = Corrupt(mention, rng);
  return mention;
}

Corpus GenerateCorpus(const kb::SyntheticKb& world,
                      const CorpusGeneratorConfig& config, Rng* rng) {
  Generator gen(world, config, rng);
  return gen.Generate();
}

}  // namespace data
}  // namespace turl
