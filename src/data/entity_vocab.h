#ifndef TURL_DATA_ENTITY_VOCAB_H_
#define TURL_DATA_ENTITY_VOCAB_H_

#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "kb/kb.h"

namespace turl {
namespace data {

/// Model-side entity vocabulary (§5.2: built over the training tables, with
/// entities appearing fewer than `min_count` times removed). Ids are dense:
/// 0 = [UNK_ENT] (out-of-vocabulary entities), 1 = [MASK_ENT] (the entity
/// [MASK] used by MER), 2.. = corpus entities.
class EntityVocab {
 public:
  static constexpr int kUnkEntity = 0;
  static constexpr int kMaskEntity = 1;
  static constexpr int kNumSpecial = 2;

  EntityVocab() = default;

  /// Counts entity occurrences (topic entities and all linked cells) over
  /// the given table indices and keeps those with count >= min_count.
  static EntityVocab Build(const Corpus& corpus,
                           const std::vector<size_t>& table_indices,
                           int min_count = 2);

  /// Model id for a KB entity; kUnkEntity when out of vocabulary.
  int Id(kb::EntityId e) const;

  /// True when the entity survived frequency filtering.
  bool Contains(kb::EntityId e) const { return Id(e) != kUnkEntity; }

  /// KB entity for a model id; kInvalidEntity for the special ids.
  kb::EntityId KbId(int id) const;

  /// Training-corpus frequency of a model id (0 for specials).
  int64_t Count(int id) const;

  /// Total vocabulary size including the special slots.
  int size() const { return static_cast<int>(kb_ids_.size()); }

 private:
  std::vector<kb::EntityId> kb_ids_;   // index = model id; specials hold -1.
  std::vector<int64_t> counts_;
  std::unordered_map<kb::EntityId, int> to_model_;
};

}  // namespace data
}  // namespace turl

#endif  // TURL_DATA_ENTITY_VOCAB_H_
