#ifndef TURL_DATA_TABLE_H_
#define TURL_DATA_TABLE_H_

#include <string>
#include <vector>

#include "kb/kb.h"
#include "util/serialize.h"
#include "util/status.h"

namespace turl {
namespace data {

/// One table cell: the paper's e = (e^e, e^m). `entity` is the linked KB
/// entity or kInvalidEntity when the cell is unlinked (mention-only);
/// `mention` is always present.
struct EntityCell {
  kb::EntityId entity = kb::kInvalidEntity;
  std::string mention;

  bool linked() const { return entity != kb::kInvalidEntity; }
};

/// A table column: header text plus one cell per row. Non-entity columns
/// (years, counts, free text) carry mentions only and always have
/// `is_entity_column` false; entity columns may still contain unlinked cells.
struct Column {
  std::string header;
  bool is_entity_column = false;
  std::vector<EntityCell> cells;
  /// Ground-truth KB relation between the subject column and this column
  /// (kInvalidRelation for the subject column itself and non-entity columns).
  /// Used to build task datasets, never seen by models at input time.
  kb::RelationId relation = kb::kInvalidRelation;
};

/// A relational Web table T = (C, H, E, e_t) per §2 of the paper.
/// `caption` is the concatenated page title + section title + caption.
/// Column 0 is always the subject column.
struct Table {
  std::string caption;
  kb::EntityId topic_entity = kb::kInvalidEntity;
  std::string topic_mention;
  std::vector<Column> columns;
  /// Ground-truth relation connecting subject entities to the topic entity
  /// (e.g. plays_for for a team roster); generation metadata.
  kb::RelationId group_relation = kb::kInvalidRelation;
  /// Generation-pattern tag ("team_roster", "filmography", ...), useful for
  /// analysis output; not an input feature.
  std::string pattern;

  int num_rows() const {
    return columns.empty() ? 0 : static_cast<int>(columns[0].cells.size());
  }
  int num_columns() const { return static_cast<int>(columns.size()); }

  /// Number of entity columns (subject column included).
  int NumEntityColumns() const;
  /// Number of linked entity cells across entity columns (topic excluded).
  int NumLinkedEntities() const;
  /// Number of linked cells in the subject column.
  int NumLinkedSubjectEntities() const;
  /// Fraction of cells in entity columns that are linked (0 if none).
  double LinkedCellFraction() const;
};

/// A corpus with the paper's train/validation/test partition (§5.1): the
/// held-out validation/test tables satisfy the quality criteria (>4 linked
/// subject entities, >=3 entity columns, >50% of entity-column cells
/// linked); everything else pre-trains.
struct Corpus {
  std::vector<Table> tables;
  std::vector<size_t> train;
  std::vector<size_t> valid;
  std::vector<size_t> test;
};

/// Binary serialization (corpus snapshots for caching between benches).
void SaveTable(const Table& table, BinaryWriter* w);
Result<Table> LoadTable(BinaryReader* r);
Status SaveCorpus(const Corpus& corpus, const std::string& path);
Result<Corpus> LoadCorpus(const std::string& path);

}  // namespace data
}  // namespace turl

#endif  // TURL_DATA_TABLE_H_
