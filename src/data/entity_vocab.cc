#include "data/entity_vocab.h"

#include <algorithm>

#include "util/logging.h"

namespace turl {
namespace data {

EntityVocab EntityVocab::Build(const Corpus& corpus,
                               const std::vector<size_t>& table_indices,
                               int min_count) {
  std::unordered_map<kb::EntityId, int64_t> counts;
  for (size_t idx : table_indices) {
    TURL_CHECK_LT(idx, corpus.tables.size());
    const Table& t = corpus.tables[idx];
    if (t.topic_entity != kb::kInvalidEntity) ++counts[t.topic_entity];
    for (const auto& col : t.columns) {
      if (!col.is_entity_column) continue;
      for (const auto& cell : col.cells) {
        if (cell.linked()) ++counts[cell.entity];
      }
    }
  }

  // Deterministic id assignment: by count descending then KB id.
  std::vector<std::pair<kb::EntityId, int64_t>> kept;
  for (const auto& [e, c] : counts) {
    if (c >= min_count) kept.emplace_back(e, c);
  }
  std::sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  EntityVocab vocab;
  vocab.kb_ids_ = {kb::kInvalidEntity, kb::kInvalidEntity};
  vocab.counts_ = {0, 0};
  for (const auto& [e, c] : kept) {
    vocab.to_model_.emplace(e, static_cast<int>(vocab.kb_ids_.size()));
    vocab.kb_ids_.push_back(e);
    vocab.counts_.push_back(c);
  }
  return vocab;
}

int EntityVocab::Id(kb::EntityId e) const {
  auto it = to_model_.find(e);
  return it == to_model_.end() ? kUnkEntity : it->second;
}

kb::EntityId EntityVocab::KbId(int id) const {
  TURL_CHECK_GE(id, 0);
  TURL_CHECK_LT(id, size());
  return kb_ids_[static_cast<size_t>(id)];
}

int64_t EntityVocab::Count(int id) const {
  TURL_CHECK_GE(id, 0);
  TURL_CHECK_LT(id, size());
  return counts_[static_cast<size_t>(id)];
}

}  // namespace data
}  // namespace turl
