#include "data/stats.h"

#include <algorithm>

#include "util/math_util.h"
#include "util/string_util.h"

namespace turl {
namespace data {

namespace {

QuantityStats Summarize(const std::vector<double>& values) {
  QuantityStats q;
  if (values.empty()) return q;
  q.min = *std::min_element(values.begin(), values.end());
  q.max = *std::max_element(values.begin(), values.end());
  q.mean = Mean(values);
  q.median = Median(values);
  return q;
}

}  // namespace

SplitStats ComputeSplitStats(const Corpus& corpus,
                             const std::vector<size_t>& indices) {
  SplitStats stats;
  stats.num_tables = indices.size();
  std::vector<double> rows, ent_cols, ents;
  rows.reserve(indices.size());
  ent_cols.reserve(indices.size());
  ents.reserve(indices.size());
  for (size_t idx : indices) {
    const Table& t = corpus.tables[idx];
    rows.push_back(t.num_rows());
    ent_cols.push_back(t.NumEntityColumns());
    ents.push_back(t.NumLinkedEntities());
  }
  stats.rows = Summarize(rows);
  stats.entity_columns = Summarize(ent_cols);
  stats.entities = Summarize(ents);
  return stats;
}

std::string FormatQuantityStats(const QuantityStats& q) {
  return FormatDouble(q.min, 0) + "\t" + FormatDouble(q.mean, 1) + "\t" +
         FormatDouble(q.median, 0) + "\t" + FormatDouble(q.max, 0);
}

}  // namespace data
}  // namespace turl
