#include "data/table.h"

namespace turl {
namespace data {

int Table::NumEntityColumns() const {
  int n = 0;
  for (const auto& c : columns) n += c.is_entity_column;
  return n;
}

int Table::NumLinkedEntities() const {
  int n = 0;
  for (const auto& c : columns) {
    if (!c.is_entity_column) continue;
    for (const auto& cell : c.cells) n += cell.linked();
  }
  return n;
}

int Table::NumLinkedSubjectEntities() const {
  if (columns.empty() || !columns[0].is_entity_column) return 0;
  int n = 0;
  for (const auto& cell : columns[0].cells) n += cell.linked();
  return n;
}

double Table::LinkedCellFraction() const {
  int total = 0, linked = 0;
  for (const auto& c : columns) {
    if (!c.is_entity_column) continue;
    total += static_cast<int>(c.cells.size());
    for (const auto& cell : c.cells) linked += cell.linked();
  }
  return total == 0 ? 0.0 : double(linked) / double(total);
}

void SaveTable(const Table& table, BinaryWriter* w) {
  w->WriteString(table.caption);
  w->WriteI64(table.topic_entity);
  w->WriteString(table.topic_mention);
  w->WriteI64(table.group_relation);
  w->WriteString(table.pattern);
  w->WriteU64(table.columns.size());
  for (const auto& col : table.columns) {
    w->WriteString(col.header);
    w->WriteU32(col.is_entity_column ? 1 : 0);
    w->WriteI64(col.relation);
    w->WriteU64(col.cells.size());
    for (const auto& cell : col.cells) {
      w->WriteI64(cell.entity);
      w->WriteString(cell.mention);
    }
  }
}

Result<Table> LoadTable(BinaryReader* r) {
  Table t;
  t.caption = r->ReadString();
  t.topic_entity = static_cast<kb::EntityId>(r->ReadI64());
  t.topic_mention = r->ReadString();
  t.group_relation = static_cast<kb::RelationId>(r->ReadI64());
  t.pattern = r->ReadString();
  const uint64_t ncols = r->ReadU64();
  if (!r->status().ok()) return r->status();
  if (ncols > 1000) return Status::IoError("corrupt table: too many columns");
  t.columns.resize(ncols);
  for (auto& col : t.columns) {
    col.header = r->ReadString();
    col.is_entity_column = r->ReadU32() != 0;
    col.relation = static_cast<kb::RelationId>(r->ReadI64());
    const uint64_t nrows = r->ReadU64();
    if (!r->status().ok()) return r->status();
    if (nrows > 1000000) return Status::IoError("corrupt table: too many rows");
    col.cells.resize(nrows);
    for (auto& cell : col.cells) {
      cell.entity = static_cast<kb::EntityId>(r->ReadI64());
      cell.mention = r->ReadString();
    }
  }
  if (!r->status().ok()) return r->status();
  return t;
}

namespace {
constexpr uint32_t kCorpusMagic = 0x54424C53u;  // "TBLS"
}  // namespace

Status SaveCorpus(const Corpus& corpus, const std::string& path) {
  BinaryWriter w(path);
  w.WriteU32(kCorpusMagic);
  w.WriteU64(corpus.tables.size());
  for (const auto& t : corpus.tables) SaveTable(t, &w);
  auto write_split = [&w](const std::vector<size_t>& split) {
    w.WriteU64(split.size());
    for (size_t i : split) w.WriteU64(i);
  };
  write_split(corpus.train);
  write_split(corpus.valid);
  write_split(corpus.test);
  return w.Close();
}

Result<Corpus> LoadCorpus(const std::string& path) {
  BinaryReader r(path);
  if (!r.status().ok()) return r.status();
  if (r.ReadU32() != kCorpusMagic) return Status::IoError("bad corpus magic");
  const uint64_t count = r.ReadU64();
  if (!r.status().ok() || count > (1ull << 24)) {
    return Status::IoError("corrupt corpus header");
  }
  Corpus corpus;
  corpus.tables.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Result<Table> t = LoadTable(&r);
    if (!t.ok()) return t.status();
    corpus.tables.push_back(std::move(t).value());
  }
  auto read_split = [&r, count]() -> Result<std::vector<size_t>> {
    const uint64_t n = r.ReadU64();
    if (!r.status().ok() || n > count) return Status::IoError("corrupt split");
    std::vector<size_t> split(n);
    for (auto& v : split) {
      v = r.ReadU64();
      if (v >= count) return Status::IoError("split index out of range");
    }
    return split;
  };
  auto train = read_split();
  if (!train.ok()) return train.status();
  corpus.train = std::move(train).value();
  auto valid = read_split();
  if (!valid.ok()) return valid.status();
  corpus.valid = std::move(valid).value();
  auto test = read_split();
  if (!test.ok()) return test.status();
  corpus.test = std::move(test).value();
  if (!r.status().ok()) return r.status();
  return corpus;
}

}  // namespace data
}  // namespace turl
