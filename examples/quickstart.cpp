// Quickstart: build a synthetic world + table corpus, pre-train a small TURL
// model with the MLM + MER objectives, and poke at what it learned —
// contextualized cell representations and masked-entity recovery.
//
//   ./build/examples/quickstart
//
// Everything is deterministic; expect a couple of minutes on one core.
// This example sticks to the `turl.h` facade: configure -> build context ->
// pre-train -> open an inference session -> read the model's predictions.

#include <cstdio>

#include "turl.h"
#include "util/math_util.h"
#include "util/timer.h"

int main() {
  using namespace turl;

  // 1. Build the data pipeline: synthetic KB -> relational tables ->
  //    WordPiece + entity vocabularies. One seed controls everything.
  ContextConfig config;
  config.corpus.num_tables = 800;  // Small corpus for a quick run.
  config.seed = 42;
  TurlContext ctx = BuildContext(config);
  std::printf("corpus: %zu tables | KB: %d entities, %lld facts\n",
              ctx.corpus.tables.size(), ctx.world.kb.num_entities(),
              static_cast<long long>(ctx.world.kb.num_facts()));

  // 2. Pre-train TURL (structure-aware Transformer + MLM/MER).
  TurlConfig model_config;
  model_config.pretrain_epochs = 3;
  TurlModel model(model_config, ctx.vocab.size(), ctx.entity_vocab.size(),
                  /*seed=*/11);
  std::printf("model: %lld parameters\n",
              static_cast<long long>(model.params()->TotalParameters()));
  Pretrainer pretrainer(&model, &ctx);
  Pretrainer::Options opts;
  WallTimer timer;
  PretrainResult result = pretrainer.Train(opts);
  std::printf("pre-trained %lld steps in %.1fs | final loss %.3f | "
              "object-entity prediction ACC %.3f\n",
              static_cast<long long>(result.steps), timer.ElapsedSeconds(),
              result.final_loss, result.final_accuracy);

  // 3. Open an inference session over the now-frozen model. Thread count
  //    comes from TURL_RT_THREADS (default: hardware concurrency); results
  //    are identical for any setting.
  InferenceSession session(model);
  std::printf("inference session: %d thread%s\n", session.num_threads(),
              session.num_threads() == 1 ? "" : "s");

  // 4. Inspect one held-out table and recover a masked entity.
  const data::Table& table = ctx.corpus.tables[ctx.corpus.valid[0]];
  std::printf("\ntable: \"%s\" (%d rows x %d cols, pattern %s)\n",
              table.caption.c_str(), table.num_rows(), table.num_columns(),
              table.pattern.c_str());

  const auto tokenizer = ctx.MakeTokenizer();
  EncodedTable clean = EncodeTable(table, tokenizer, ctx.entity_vocab);
  std::vector<int> maskable = MaskableEntityPositions(clean);
  if (maskable.empty()) {
    std::printf("no maskable cells in this table\n");
    return 0;
  }
  const int cell = maskable.back();
  const kb::EntityId truth_kb = clean.entity_kb_ids[size_t(cell)];
  std::printf("masking cell (row %d, col %d): \"%s\"\n",
              clean.entity_row[size_t(cell)],
              clean.entity_column[size_t(cell)],
              ctx.world.kb.entity(truth_kb).name.c_str());

  EncodedTable masked = clean;
  MaskEntityCell(&masked, cell, /*mask_mention=*/true);
  nn::Tensor hidden = session.Encode(masked);
  Rng rng(0);
  std::vector<int> candidates = BuildMerCandidates(
      clean, pretrainer.cooccurrence(), model.entity_vocab_size(),
      model_config.mer_max_candidates, model_config.mer_min_random_negatives,
      &rng);
  // Scoring::kServe marks this as inference-only scoring: with
  // TURL_QUANT_SCORING=1 in the environment it runs the int8 path.
  nn::Tensor logits =
      model.MerLogits(hidden, {TurlModel::EntityHiddenRow(masked, cell)},
                      candidates, core::Scoring::kServe);
  std::vector<float> scores = logits.ToVector();
  std::printf("top recovered entities (of %zu candidates):\n",
              candidates.size());
  for (size_t rank_idx : TopK(scores, 5)) {
    const kb::EntityId kb_id =
        ctx.entity_vocab.KbId(candidates[rank_idx]);
    std::printf("  %6.2f  %s%s\n", scores[rank_idx],
                kb_id == kb::kInvalidEntity
                    ? "<special>"
                    : ctx.world.kb.entity(kb_id).name.c_str(),
                candidates[rank_idx] == clean.entity_ids[size_t(cell)]
                    ? "   <-- ground truth"
                    : "");
  }
  return 0;
}
