// Table interpretation walkthrough: run the three interpretation tasks of
// the TUBE benchmark — entity linking, column type annotation and relation
// extraction — on a handful of held-out tables, printing the predictions
// next to the ground truth.
//
//   ./build/examples/table_interpretation

#include <cstdio>

#include "core/context.h"
#include "core/model.h"
#include "core/model_cache.h"
#include "kb/lookup.h"
#include "tasks/column_type.h"
#include "tasks/entity_linking.h"
#include "tasks/relation_extraction.h"
#include "util/timer.h"

int main() {
  using namespace turl;

  core::ContextConfig config;
  config.corpus.num_tables = 1200;
  core::TurlContext ctx = core::BuildContext(config);
  core::TurlConfig model_config;
  model_config.pretrain_epochs = 3;

  // Pre-train (cached under $TURL_CACHE / ./turl_cache between runs).
  core::TurlModel model(model_config, ctx.vocab.size(),
                        ctx.entity_vocab.size(), 11);
  core::Pretrainer::Options pretrain_opts;
  core::GetOrTrainModel(&model, ctx, pretrain_opts, core::DefaultCacheDir(),
                        "_example");

  const data::Table& table = ctx.corpus.tables[ctx.corpus.test[0]];
  std::printf("table: \"%s\"\nheaders:", table.caption.c_str());
  for (const data::Column& col : table.columns) {
    std::printf(" [%s]", col.header.c_str());
  }
  std::printf("\n\n");

  tasks::FinetuneOptions ft;
  ft.epochs = 1;
  ft.max_tables = 150;

  // ---- 1. Entity linking -------------------------------------------------
  {
    kb::LookupService lookup(&ctx.world.kb);
    tasks::ElDataset train = tasks::BuildElDataset(
        ctx, lookup, ctx.corpus.train, 50, /*drop_unreachable=*/true,
        /*max_instances=*/1500);
    core::TurlModel el_model(model_config, ctx.vocab.size(),
                             ctx.entity_vocab.size(), 11);
    core::GetOrTrainModel(&el_model, ctx, pretrain_opts,
                          core::DefaultCacheDir(), "_example");
    tasks::TurlEntityLinker linker(&el_model, &ctx, {true, true}, 31);
    linker.Finetune(train, ft);

    tasks::ElDataset sample = tasks::BuildElDataset(
        ctx, lookup, {ctx.corpus.test[0]}, 50, false);
    std::printf("-- entity linking (%zu mentions) --\n",
                sample.instances.size());
    int shown = 0;
    for (const tasks::ElInstance& inst : sample.instances) {
      if (++shown > 6) break;
      const kb::EntityId pred = linker.Predict(inst);
      const std::string& mention = table.columns[size_t(inst.column)]
                                       .cells[size_t(inst.row)]
                                       .mention;
      std::printf("  \"%s\" -> %s  (gold: %s)%s\n", mention.c_str(),
                  pred == kb::kInvalidEntity
                      ? "<no candidates>"
                      : ctx.world.kb.entity(pred).name.c_str(),
                  ctx.world.kb.entity(inst.gold).name.c_str(),
                  pred == inst.gold ? "  OK" : "");
    }
  }

  // ---- 2. Column type annotation -----------------------------------------
  {
    tasks::ColumnTypeDataset dataset = tasks::BuildColumnTypeDataset(ctx);
    core::TurlModel ct_model(model_config, ctx.vocab.size(),
                             ctx.entity_vocab.size(), 11);
    core::GetOrTrainModel(&ct_model, ctx, pretrain_opts,
                          core::DefaultCacheDir(), "_example");
    tasks::TurlColumnTyper typer(&ct_model, &ctx, &dataset,
                                 tasks::InputVariant::Full(), 31);
    typer.Finetune(ft);
    std::printf("\n-- column type annotation --\n");
    for (const tasks::ColumnTypeInstance& inst : dataset.test) {
      if (inst.table_index != ctx.corpus.test[0]) continue;
      std::printf("  column [%s]: predicted {",
                  table.columns[size_t(inst.column)].header.c_str());
      for (int l : typer.Predict(inst)) {
        std::printf(" %s", dataset.label_names[size_t(l)].c_str());
      }
      std::printf(" }  gold {");
      for (int l : inst.labels) {
        std::printf(" %s", dataset.label_names[size_t(l)].c_str());
      }
      std::printf(" }\n");
    }
  }

  // ---- 3. Relation extraction --------------------------------------------
  {
    tasks::RelationDataset dataset = tasks::BuildRelationDataset(ctx);
    core::TurlModel re_model(model_config, ctx.vocab.size(),
                             ctx.entity_vocab.size(), 11);
    core::GetOrTrainModel(&re_model, ctx, pretrain_opts,
                          core::DefaultCacheDir(), "_example");
    tasks::TurlRelationExtractor extractor(&re_model, &ctx, &dataset,
                                           tasks::InputVariant::Full(), 31);
    extractor.Finetune(ft);
    std::printf("\n-- relation extraction --\n");
    for (const tasks::RelationInstance& inst : dataset.test) {
      if (inst.table_index != ctx.corpus.test[0]) continue;
      std::printf("  subject [%s] x object [%s]: predicted {",
                  table.columns[0].header.c_str(),
                  table.columns[size_t(inst.object_column)].header.c_str());
      for (int l : extractor.Predict(inst)) {
        std::printf(" %s", dataset.label_names[size_t(l)].c_str());
      }
      std::printf(" }  gold { %s }\n",
                  dataset.label_names[size_t(inst.label)].c_str());
    }
  }
  return 0;
}
