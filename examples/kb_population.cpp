// Knowledge-base population: the application §6.4 motivates ("allows the
// extraction of new knowledge from Web tables for tasks like knowledge base
// population"). We hide a fraction of the KB's facts, let the pre-trained
// TURL model fill the corresponding cells from table context, and measure
// how many hidden facts it recovers at high confidence.
//
//   ./build/examples/kb_population

#include <algorithm>
#include <cstdio>

#include "baselines/cell_filling.h"
#include "core/model_cache.h"
#include "tasks/cell_filling.h"
#include "util/math_util.h"

int main() {
  using namespace turl;

  core::ContextConfig config;
  config.corpus.num_tables = 1200;
  core::TurlContext ctx = core::BuildContext(config);
  core::TurlConfig model_config;
  model_config.pretrain_epochs = 3;
  core::TurlModel model(model_config, ctx.vocab.size(),
                        ctx.entity_vocab.size(), 11);
  core::Pretrainer::Options opts;
  core::GetOrTrainModel(&model, ctx, opts, core::DefaultCacheDir(),
                        "_example");

  // Treat held-out test tables as "new Web tables": their (subject, header,
  // object) triples are facts the KB owner may be missing.
  baselines::CellFillingIndex index(ctx.corpus, ctx.corpus.train);
  std::vector<tasks::CellFillInstance> instances =
      tasks::BuildCellFillInstances(ctx, index, ctx.corpus.test, 3, 150);
  if (instances.empty()) {
    std::printf("no candidate facts found\n");
    return 0;
  }
  tasks::TurlCellFiller filler(&model, &ctx);

  int proposed = 0, correct = 0, shown = 0;
  for (const tasks::CellFillInstance& inst : instances) {
    std::vector<float> scores = filler.Scores(inst);
    if (scores.empty()) continue;
    // Softmax-style margin as a confidence proxy: best minus runner-up.
    auto order = TopK(scores, 2);
    const double margin =
        order.size() > 1 ? double(scores[order[0]]) - double(scores[order[1]])
                         : 1e9;
    if (margin < 2.0) continue;  // Only confident proposals populate the KB.
    ++proposed;
    const kb::EntityId prediction = inst.candidates[order[0]].entity;
    const bool ok = prediction == inst.gold;
    correct += ok;
    if (shown < 8) {
      ++shown;
      const data::Table& t = ctx.corpus.tables[inst.table_index];
      std::printf("%s  (%s, %s, %s)   gold: %s\n", ok ? "OK " : "BAD",
                  ctx.world.kb.entity(inst.subject).name.c_str(),
                  t.columns[size_t(inst.object_column)].header.c_str(),
                  ctx.world.kb.entity(prediction).name.c_str(),
                  ctx.world.kb.entity(inst.gold).name.c_str());
    }
  }
  std::printf(
      "\nKB population: %d/%zu cells proposed at margin >= 2.0, "
      "precision %.1f%%\n",
      proposed, instances.size(),
      proposed == 0 ? 0.0 : 100.0 * correct / proposed);
  std::printf("(raising the margin trades coverage for precision — the "
              "knob a KB-population pipeline would tune)\n");
  return 0;
}
