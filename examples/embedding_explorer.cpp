// Embedding explorer: extract TURL's deep contextualized representations
// (Definition 2.1) from held-out tables and demonstrate the property that
// motivates them — the same entity receives *different* vectors in different
// table contexts, while structurally related cells receive similar ones.
//
//   ./build/examples/embedding_explorer

#include <cstdio>
#include <map>

#include "core/model_cache.h"
#include "core/representation.h"
#include "util/math_util.h"

int main() {
  using namespace turl;

  core::ContextConfig config;
  config.corpus.num_tables = 1200;
  core::TurlContext ctx = core::BuildContext(config);
  core::TurlConfig model_config;
  model_config.pretrain_epochs = 3;
  core::TurlModel model(model_config, ctx.vocab.size(),
                        ctx.entity_vocab.size(), 11);
  core::Pretrainer::Options opts;
  core::GetOrTrainModel(&model, ctx, opts, core::DefaultCacheDir(),
                        "_example");

  // Find one entity that appears in at least two held-out tables.
  std::map<kb::EntityId, std::vector<size_t>> appearances;
  std::vector<size_t> held_out = ctx.corpus.valid;
  held_out.insert(held_out.end(), ctx.corpus.test.begin(),
                  ctx.corpus.test.end());
  for (size_t idx : held_out) {
    const data::Table& t = ctx.corpus.tables[idx];
    for (const data::Column& col : t.columns) {
      if (!col.is_entity_column) continue;
      for (const data::EntityCell& cell : col.cells) {
        if (cell.linked()) appearances[cell.entity].push_back(idx);
      }
    }
  }
  kb::EntityId shared = kb::kInvalidEntity;
  size_t table_a = 0, table_b = 0;
  for (const auto& [e, tables] : appearances) {
    for (size_t i = 1; i < tables.size(); ++i) {
      if (tables[i] != tables[0]) {
        shared = e;
        table_a = tables[0];
        table_b = tables[i];
        break;
      }
    }
    if (shared != kb::kInvalidEntity) break;
  }
  if (shared == kb::kInvalidEntity) {
    std::printf("no entity appears in two held-out tables; rerun with a "
                "bigger corpus\n");
    return 0;
  }

  const data::Table& ta = ctx.corpus.tables[table_a];
  const data::Table& tb = ctx.corpus.tables[table_b];
  std::printf("entity \"%s\" appears in:\n  A: \"%s\"\n  B: \"%s\"\n",
              ctx.world.kb.entity(shared).name.c_str(), ta.caption.c_str(),
              tb.caption.c_str());

  core::TableRepresentation rep_a =
      core::ExtractRepresentation(model, ctx, ta);
  core::TableRepresentation rep_b =
      core::ExtractRepresentation(model, ctx, tb);

  // Locate the entity's vector in both tables.
  auto find_vector = [&](const core::TableRepresentation& rep) {
    for (size_t i = 0; i < rep.entity_kb_ids.size(); ++i) {
      if (rep.entity_kb_ids[i] == shared) return rep.entity_vectors[i];
    }
    return std::vector<float>();
  };
  std::vector<float> va = find_vector(rep_a);
  std::vector<float> vb = find_vector(rep_b);
  if (va.empty() || vb.empty()) {
    std::printf("entity cell truncated out of an encoding; nothing to show\n");
    return 0;
  }
  std::printf("\ncosine(same entity, two contexts) = %.3f "
              "(contextualized: < 1, unlike a static embedding)\n",
              core::RepresentationSimilarity(va, vb));

  // Same-column cells should be more similar than cross-column cells.
  double same_col = 0, cross_col = 0;
  int same_n = 0, cross_n = 0;
  for (size_t i = 0; i < rep_a.entity_vectors.size(); ++i) {
    for (size_t j = i + 1; j < rep_a.entity_vectors.size(); ++j) {
      if (rep_a.entity_rows[i] < 0 || rep_a.entity_rows[j] < 0) continue;
      const double sim = core::RepresentationSimilarity(
          rep_a.entity_vectors[i], rep_a.entity_vectors[j]);
      if (rep_a.entity_columns[i] == rep_a.entity_columns[j]) {
        same_col += sim;
        ++same_n;
      } else {
        cross_col += sim;
        ++cross_n;
      }
    }
  }
  if (same_n > 0 && cross_n > 0) {
    std::printf("mean cosine within a column: %.3f | across columns: %.3f\n",
                same_col / same_n, cross_col / cross_n);
  }

  // Column aggregates: which of A's columns is most similar to B's subject?
  if (!rep_a.column_vectors.empty() && !rep_b.column_vectors.empty()) {
    std::printf("\ncolumn-vector similarity (A columns vs B's subject "
                "column):\n");
    for (size_t c = 0; c < rep_a.column_vectors.size(); ++c) {
      std::printf("  [%s] %.3f\n", ta.columns[c].header.c_str(),
                  core::RepresentationSimilarity(rep_a.column_vectors[c],
                                                 rep_b.column_vectors[0]));
    }
  }
  return 0;
}
