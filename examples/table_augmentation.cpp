// Table augmentation walkthrough: the three augmentation tasks of the TUBE
// benchmark — row population, cell filling and schema augmentation — driven
// end to end on a held-out query table.
//
//   ./build/examples/table_augmentation

#include <cstdio>

#include "baselines/cell_filling.h"
#include "baselines/knn_schema.h"
#include "baselines/row_population.h"
#include "core/context.h"
#include "core/model_cache.h"
#include "tasks/cell_filling.h"
#include "tasks/row_population.h"
#include "tasks/schema_augmentation.h"
#include "util/math_util.h"

int main() {
  using namespace turl;

  core::ContextConfig config;
  config.corpus.num_tables = 1200;
  core::TurlContext ctx = core::BuildContext(config);
  core::TurlConfig model_config;
  model_config.pretrain_epochs = 3;
  core::Pretrainer::Options pretrain_opts;

  tasks::FinetuneOptions ft;
  ft.epochs = 1;

  // ---- 1. Row population -------------------------------------------------
  {
    baselines::RowPopCandidateGenerator generator(ctx.corpus,
                                                  ctx.corpus.train);
    std::vector<tasks::RowPopInstance> queries = tasks::BuildRowPopInstances(
        ctx, generator, ctx.corpus.test, /*num_seeds=*/1, /*min_subjects=*/6,
        /*max_instances=*/40);
    if (!queries.empty()) {
      core::TurlModel model(model_config, ctx.vocab.size(),
                            ctx.entity_vocab.size(), 11);
      core::GetOrTrainModel(&model, ctx, pretrain_opts,
                            core::DefaultCacheDir(), "_example");
      tasks::TurlRowPopulator populator(&model, &ctx);
      std::vector<tasks::RowPopInstance> train = tasks::BuildRowPopInstances(
          ctx, generator, ctx.corpus.train, 1, 4, 200);
      populator.Finetune(train, ft);

      const tasks::RowPopInstance& q = queries[0];
      const data::Table& table = ctx.corpus.tables[q.table_index];
      std::printf("-- row population --\nquery: \"%s\", seed: %s\n",
                  table.caption.c_str(),
                  ctx.world.kb.entity(q.seeds[0]).name.c_str());
      std::vector<float> fscores = populator.Scores(q);
      std::printf("top suggested subject entities:\n");
      for (size_t idx : TopK(fscores, 5)) {
        const kb::EntityId e = q.candidates[idx];
        const bool hit =
            std::find(q.gold.begin(), q.gold.end(), e) != q.gold.end();
        std::printf("  %-24s %s\n", ctx.world.kb.entity(e).name.c_str(),
                    hit ? "<-- in ground truth" : "");
      }
    }
  }

  // ---- 2. Cell filling (no fine-tuning) -----------------------------------
  {
    baselines::CellFillingIndex index(ctx.corpus, ctx.corpus.train);
    std::vector<tasks::CellFillInstance> queries =
        tasks::BuildCellFillInstances(ctx, index, ctx.corpus.test, 3, 40);
    if (!queries.empty()) {
      core::TurlModel model(model_config, ctx.vocab.size(),
                            ctx.entity_vocab.size(), 11);
      core::GetOrTrainModel(&model, ctx, pretrain_opts,
                            core::DefaultCacheDir(), "_example");
      tasks::TurlCellFiller filler(&model, &ctx);
      const tasks::CellFillInstance& q = queries[0];
      const data::Table& table = ctx.corpus.tables[q.table_index];
      std::printf("\n-- cell filling --\n\"%s\": fill column [%s] for "
                  "subject %s\n",
                  table.caption.c_str(),
                  table.columns[size_t(q.object_column)].header.c_str(),
                  ctx.world.kb.entity(q.subject).name.c_str());
      std::vector<float> fscores = filler.Scores(q);
      for (size_t idx : TopK(fscores, 3)) {
        std::printf("  %-24s %s\n",
                    ctx.world.kb.entity(q.candidates[idx].entity).name.c_str(),
                    q.candidates[idx].entity == q.gold ? "<-- ground truth"
                                                       : "");
      }
    }
  }

  // ---- 3. Schema augmentation ---------------------------------------------
  {
    tasks::HeaderVocab vocab = tasks::BuildHeaderVocab(ctx);
    std::vector<tasks::SchemaAugInstance> queries =
        tasks::BuildSchemaAugInstances(ctx, vocab, ctx.corpus.test, 1, 40);
    if (!queries.empty()) {
      core::TurlModel model(model_config, ctx.vocab.size(),
                            ctx.entity_vocab.size(), 11);
      core::GetOrTrainModel(&model, ctx, pretrain_opts,
                            core::DefaultCacheDir(), "_example");
      tasks::TurlSchemaAugmenter augmenter(&model, &ctx, &vocab, 31);
      std::vector<tasks::SchemaAugInstance> train =
          tasks::BuildSchemaAugInstances(ctx, vocab, ctx.corpus.train, 1, 300);
      augmenter.Finetune(train, ft);

      const tasks::SchemaAugInstance& q = queries[0];
      const data::Table& table = ctx.corpus.tables[q.table_index];
      std::printf("\n-- schema augmentation --\nquery: \"%s\", seed header: "
                  "[%s]\n",
                  table.caption.c_str(),
                  vocab.headers[size_t(q.seed_headers[0])].c_str());
      std::printf("suggested headers:");
      std::vector<int> ranking = augmenter.Predict(q);
      for (size_t i = 0; i < ranking.size() && i < 5; ++i) {
        const bool hit = std::find(q.gold_headers.begin(),
                                   q.gold_headers.end(),
                                   ranking[i]) != q.gold_headers.end();
        std::printf(" %s%s,", vocab.headers[size_t(ranking[i])].c_str(),
                    hit ? "(*)" : "");
      }
      std::printf("   ((*) = in ground truth)\n");
    }
  }
  return 0;
}
